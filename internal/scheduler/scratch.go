package scheduler

import (
	"saga/internal/graph"
	"saga/internal/schedule"
)

// Scratch is the per-worker reusable state behind the allocation-free
// scheduling hot path: one builder, the precomputed instance tables, the
// rank/order/ready-set buffers every list scheduler needs, and a small
// pool of spare schedules for algorithms that compare candidates
// (Duplex, WBA, ensembles). A Scratch is NOT safe for concurrent use;
// give each worker goroutine its own (runner.MapState does exactly
// that).
//
// Buffer ownership: a value returned by a Scratch accessor (ranks,
// orders, the builder, the ready set) is valid until the next call to
// the same accessor — with one sharing caveat: ReadySet and
// TopoOrderByPriority use the same underlying frontier, so calling
// either invalidates a ready set borrowed from the other. Schedulers
// therefore consume what they borrow within one ScheduleScratch call
// and never retain scratch-owned memory in their results —
// ScheduleInto copies assignments into the caller-owned Schedule.
type Scratch struct {
	inst *graph.Instance // instance the tables are currently built for
	tab  graph.Tables

	// cache memoizes the rank vectors across the Schedule calls this
	// scratch serves, keyed on (instance pointer, tab.Generation) — see
	// EvalCache. The second scheduler of a target/baseline pair reuses
	// the first's ranks instead of recomputing them on identical tables.
	cache EvalCache

	builder schedule.Builder
	rs      ReadySet

	rankUp, rankDown, level []float64
	floats                  []float64
	bools                   []bool
	order                   []int

	// orderUp/orderDown/orderLevel hold the memoized priority topological
	// orders for the three rank vectors above, separate from the generic
	// order buffer so a CPoP-style Floats-priority sort (never memoized)
	// cannot clobber a memo another scheduler is about to hit.
	orderUp, orderDown, orderLevel []int

	pool []*schedule.Schedule // spare schedules (stack)

	// ext holds per-algorithm extension state keyed by algorithm name
	// (see Ext). The PISA annealer also parks its per-worker undo log
	// and reachability buffers here, so every piece of hot-loop mutable
	// state shares the scratch's one-per-worker ownership rule.
	ext map[string]any
}

// NewScratch returns an empty scratch; every buffer grows on first use
// and is reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// Prepare (re)builds the precomputed cost tables for inst, reusing the
// scratch's storage, and remembers inst as the tables' owner. Call it
// after mutating an instance in place, unless every mutation was
// mirrored through the tables' incremental Update*/AddDep/RemoveDep
// methods (the PISA annealer patches instead of rebuilding — see the
// staleness contract in graph.Tables); ScheduleInto calls it
// automatically when it sees a different instance pointer.
func (s *Scratch) Prepare(inst *graph.Instance) {
	s.tab.Build(inst)
	s.inst = inst
}

// MarkDirty forgets which instance the tables were built for, forcing
// the next Tables call to rebuild. Use it when an instance was mutated
// and Prepare is inconvenient to call at the mutation site.
func (s *Scratch) MarkDirty() { s.inst = nil }

// Tables returns the precomputed tables for inst, rebuilding them only
// if the scratch last prepared a different instance pointer. Callers
// that mutate an instance between calls must Prepare or MarkDirty first.
func (s *Scratch) Tables(inst *graph.Instance) *graph.Tables {
	if s.inst != inst {
		s.Prepare(inst)
	}
	return &s.tab
}

// Builder resets the scratch's builder for inst and returns it, bound
// to the precomputed tables so execution-time queries are table reads.
func (s *Scratch) Builder(inst *graph.Instance) *schedule.Builder {
	s.builder.ResetTables(inst, s.Tables(inst))
	return &s.builder
}

// ReadySet resets the scratch's ready set for g and returns it. The set
// shares storage with TopoOrderByPriority: calling that invalidates a
// borrowed ready set (and vice versa).
func (s *Scratch) ReadySet(g *graph.TaskGraph) *ReadySet {
	s.rs.Reset(g)
	return &s.rs
}

// UpwardRank is the scratch-buffered UpwardRank: same values, reused
// storage, memoized per (instance, table generation) — when the tables
// are unchanged since the last computation (the second scheduler of a
// PISA pair, ensemble members sharing a priority) the stored vector is
// returned without recomputation. The slice is valid until the next
// UpwardRank call on s; callers must not mutate it (every scheduler
// treats ranks as read-only priorities).
func (s *Scratch) UpwardRank(inst *graph.Instance) []float64 {
	tab := s.Tables(inst)
	if !s.cache.lookup(inst, tab.Generation, &s.cache.upOK) {
		s.rankUp = UpwardRankInto(inst, tab, s.rankUp)
	}
	return s.rankUp
}

// DownwardRank is the scratch-buffered DownwardRank, memoized like
// UpwardRank.
func (s *Scratch) DownwardRank(inst *graph.Instance) []float64 {
	tab := s.Tables(inst)
	if !s.cache.lookup(inst, tab.Generation, &s.cache.downOK) {
		s.rankDown = DownwardRankInto(inst, tab, s.rankDown)
	}
	return s.rankDown
}

// StaticLevel is the scratch-buffered StaticLevel, memoized like
// UpwardRank.
func (s *Scratch) StaticLevel(inst *graph.Instance) []float64 {
	tab := s.Tables(inst)
	if !s.cache.lookup(inst, tab.Generation, &s.cache.levelOK) {
		s.level = StaticLevelInto(inst, tab, s.level)
	}
	return s.level
}

// Floats returns a zeroed float buffer of length n distinct from the
// rank buffers (CPoP's combined priority, BIL's level matrix). The
// buffer is valid until the next Floats call on s.
func (s *Scratch) Floats(n int) []float64 {
	if cap(s.floats) < n {
		s.floats = make([]float64, n)
	}
	s.floats = s.floats[:n]
	for i := range s.floats {
		s.floats[i] = 0
	}
	return s.floats
}

// Bools returns a false-initialized bool buffer of length n (CPoP's
// critical-path membership set). Valid until the next Bools call on s.
func (s *Scratch) Bools(n int) []bool {
	if cap(s.bools) < n {
		s.bools = make([]bool, n)
	}
	s.bools = s.bools[:n]
	for i := range s.bools {
		s.bools[i] = false
	}
	return s.bools
}

// TopoOrderByPriority is the scratch-buffered TopoOrderByPriority: same
// order, reused frontier and order storage. The slice is valid until the
// next TopoOrderByPriority call on s with the same priority source; the
// frontier is shared with ReadySet, so a recomputing call invalidates a
// borrowed ready set.
//
// When the priority slice is one of the scratch's own memoized rank
// vectors (the buffer identity, not just equal values), the derived
// order is itself memoized per (instance, table generation): a HEFT
// evaluation right after another HEFT of the identical tables (the
// baseline of a same-family PISA pair, ensemble members sharing a rank)
// reuses the sorted order instead of re-running the priority Kahn. The
// guard requires the matching rank-valid flag, so a vector recomputed
// outside the cache (disabled mode) never vouches for a stale order.
func (s *Scratch) TopoOrderByPriority(g *graph.TaskGraph, priority []float64) []int {
	var buf *[]int
	var ok *bool
	if s.inst != nil && s.inst.Graph == g {
		switch {
		case sameFloatBuffer(priority, s.rankUp) && s.cache.upOK:
			buf, ok = &s.orderUp, &s.cache.topoUpOK
		case sameFloatBuffer(priority, s.rankDown) && s.cache.downOK:
			buf, ok = &s.orderDown, &s.cache.topoDownOK
		case sameFloatBuffer(priority, s.level) && s.cache.levelOK:
			buf, ok = &s.orderLevel, &s.cache.topoLevelOK
		}
	}
	if buf == nil {
		s.rs.Reset(g)
		s.order = topoOrderByPriority(&s.rs, g, priority, s.order[:0])
		return s.order
	}
	if !s.cache.lookup(s.inst, s.tab.Generation, ok) {
		s.rs.Reset(g)
		*buf = topoOrderByPriority(&s.rs, g, priority, (*buf)[:0])
	}
	return *buf
}

// sameFloatBuffer reports whether a and b are views of the identical
// backing array region (same base pointer, same length) — the memo key
// test that ties a priority argument back to a scratch-owned rank
// buffer without comparing values.
func sameFloatBuffer(a, b []float64) bool {
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}

// AcquireSchedule pops a spare schedule from the scratch's pool (or
// allocates the pool's first on cold start). Pair with ReleaseSchedule;
// acquire/release nest, so ensembles whose members also use spares
// compose safely.
func (s *Scratch) AcquireSchedule() *schedule.Schedule {
	if n := len(s.pool); n > 0 {
		out := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return out
	}
	return &schedule.Schedule{}
}

// ReleaseSchedule returns a spare to the pool for reuse.
func (s *Scratch) ReleaseSchedule(sch *schedule.Schedule) {
	s.pool = append(s.pool, sch)
}

// Ext returns the per-algorithm extension state stored under key,
// creating it with mk on first use. Algorithms with state the generic
// scratch cannot know about (WBA's option list and RNGs, LMT's level
// buckets) keep it here so one Scratch serves every scheduler.
func (s *Scratch) Ext(key string, mk func() any) any {
	if v, ok := s.ext[key]; ok {
		return v
	}
	if s.ext == nil {
		s.ext = make(map[string]any, 4)
	}
	v := mk()
	s.ext[key] = v
	return v
}
