package scheduler

import (
	"sync"
	"testing"
)

func TestScratchPoolReuseAndFreshCount(t *testing.T) {
	var p ScratchPool
	s1 := p.Get()
	if s1 == nil {
		t.Fatal("Get returned nil")
	}
	if got := p.Fresh(); got != 1 {
		t.Fatalf("fresh after first Get = %d, want 1", got)
	}
	p.Put(s1)
	s2 := p.Get()
	if s2 != s1 {
		t.Error("pool did not hand back the released scratch")
	}
	if got := p.Fresh(); got != 1 {
		t.Fatalf("fresh after reuse = %d, want 1", got)
	}
	p.Put(nil) // tolerated no-op
}

func TestScratchPoolConcurrentGetPut(t *testing.T) {
	var p ScratchPool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := p.Get()
				if s == nil {
					t.Error("nil scratch from pool")
					return
				}
				p.Put(s)
			}
		}()
	}
	wg.Wait()
	if p.Fresh() > 800 {
		t.Fatalf("fresh counter %d exceeds total Gets", p.Fresh())
	}
}
