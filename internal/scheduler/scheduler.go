// Package scheduler defines the common interface every scheduling
// algorithm implements, a registry used by the CLI and the experiment
// drivers, and the shared priority computations (upward rank, downward
// rank, static level) that the list schedulers build on.
package scheduler

import (
	"fmt"
	"sort"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// Scheduler is the common interface for every algorithm (Table I of the
// paper). Schedule must return a schedule that satisfies
// schedule.Validate for any valid instance, or an error if the instance
// is outside the algorithm's supported size (BruteForce, SMT).
type Scheduler interface {
	Name() string
	Schedule(inst *graph.Instance) (*schedule.Schedule, error)
}

// Requirements describes the network homogeneity an algorithm was
// designed for. PISA uses it to restrict perturbations (Section VI): for
// algorithms designed for homogeneous node speeds the node weights are
// pinned to 1, and likewise for homogeneous link strengths.
type Requirements struct {
	HomogeneousNodes bool
	HomogeneousLinks bool
}

// Constrained is implemented by schedulers with homogeneity requirements.
type Constrained interface {
	Requirements() Requirements
}

// RequirementsOf returns the scheduler's requirements, or the zero value
// (fully heterogeneous) if it declares none.
func RequirementsOf(s Scheduler) Requirements {
	if c, ok := s.(Constrained); ok {
		return c.Requirements()
	}
	return Requirements{}
}

// Func adapts a plain function into a Scheduler.
type Func struct {
	SchedName string
	Fn        func(*graph.Instance) (*schedule.Schedule, error)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.SchedName }

// Schedule implements Scheduler.
func (f Func) Schedule(inst *graph.Instance) (*schedule.Schedule, error) { return f.Fn(inst) }

// registry maps scheduler names to factories.
var registry = map[string]func() Scheduler{}

// Register adds a scheduler factory under its name. It panics on
// duplicates; registration happens from package init functions.
func Register(name string, factory func() Scheduler) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheduler: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New instantiates a registered scheduler by name.
func New(name string) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown scheduler %q", name)
	}
	return f(), nil
}

// Names returns all registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// UpwardRank computes HEFT's rank_u for every task: the average execution
// time of the task plus the maximum over successors of average
// communication time plus the successor's rank. Sink tasks have rank
// equal to their average execution time.
func UpwardRank(inst *graph.Instance) []float64 {
	g := inst.Graph
	rank := make([]float64, g.NumTasks())
	order, err := g.TopoOrder()
	if err != nil {
		panic("scheduler: UpwardRank on cyclic graph: " + err.Error())
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, d := range g.Succ[t] {
			v := inst.AvgCommTime(t, d.To) + rank[d.To]
			if v > best {
				best = v
			}
		}
		rank[t] = inst.AvgExecTime(t) + best
	}
	return rank
}

// DownwardRank computes CPoP's rank_d for every task: the length of the
// longest average-time path from an entry task to (but not including)
// the task itself. Entry tasks have rank 0.
func DownwardRank(inst *graph.Instance) []float64 {
	g := inst.Graph
	rank := make([]float64, g.NumTasks())
	order, err := g.TopoOrder()
	if err != nil {
		panic("scheduler: DownwardRank on cyclic graph: " + err.Error())
	}
	for _, t := range order {
		best := 0.0
		for _, d := range g.Pred[t] {
			u := d.To
			v := rank[u] + inst.AvgExecTime(u) + inst.AvgCommTime(u, t)
			if v > best {
				best = v
			}
		}
		rank[t] = best
	}
	return rank
}

// StaticLevel computes the communication-free static level used by
// GDL/DLS and FCP: SL(t) = avg exec(t) + max over successors SL(s).
func StaticLevel(inst *graph.Instance) []float64 {
	g := inst.Graph
	sl := make([]float64, g.NumTasks())
	order, err := g.TopoOrder()
	if err != nil {
		panic("scheduler: StaticLevel on cyclic graph: " + err.Error())
	}
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, d := range g.Succ[t] {
			if sl[d.To] > best {
				best = sl[d.To]
			}
		}
		sl[t] = inst.AvgExecTime(t) + best
	}
	return sl
}

// OrderByPriority returns task indices sorted by decreasing priority,
// breaking ties toward the lower task index. The result is always a valid
// topological order when the priorities are strictly decreasing along
// edges (true for UpwardRank on graphs with positive task costs).
func OrderByPriority(priority []float64) []int {
	order := make([]int, len(priority))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if priority[order[a]] != priority[order[b]] {
			return priority[order[a]] > priority[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// TopoOrderByPriority returns a topological order of g that always picks,
// among the currently ready tasks, the one with the highest priority
// (ties toward the lower task index). For priorities that strictly
// decrease along edges — upward rank on graphs with positive task costs —
// this coincides with a plain descending sort, but unlike a plain sort it
// remains a valid topological order when zero-cost tasks produce rank
// ties (which PISA's weight perturbations readily create).
func TopoOrderByPriority(g *graph.TaskGraph, priority []float64) []int {
	rs := NewReadySet(g)
	order := make([]int, 0, g.NumTasks())
	for !rs.Empty() {
		ready := rs.Ready()
		best := ready[0]
		for _, t := range ready[1:] {
			if priority[t] > priority[best] {
				best = t
			}
		}
		order = append(order, best)
		rs.Complete(best)
	}
	if len(order) != g.NumTasks() {
		panic("scheduler: TopoOrderByPriority on cyclic graph")
	}
	return order
}

// ReadySet maintains the frontier of schedulable tasks (all prerequisites
// placed) for schedulers that make dynamic choices among ready tasks.
type ReadySet struct {
	g       *graph.TaskGraph
	pending []int // remaining unplaced predecessor count per task
	ready   []int // current frontier, kept sorted by task index
}

// NewReadySet builds the frontier for the graph: initially its source
// tasks.
func NewReadySet(g *graph.TaskGraph) *ReadySet {
	rs := &ReadySet{g: g, pending: make([]int, g.NumTasks())}
	for t := 0; t < g.NumTasks(); t++ {
		rs.pending[t] = len(g.Pred[t])
		if rs.pending[t] == 0 {
			rs.ready = append(rs.ready, t)
		}
	}
	return rs
}

// Ready returns the current frontier (sorted by task index). The slice is
// owned by the set; callers must not mutate it.
func (rs *ReadySet) Ready() []int { return rs.ready }

// Empty reports whether no tasks remain ready.
func (rs *ReadySet) Empty() bool { return len(rs.ready) == 0 }

// Uncomplete reverses Complete(t): successors that became ready when t
// completed leave the frontier and t rejoins it. It is used by
// backtracking searches (package exact). The caller must undo completions
// in LIFO order relative to Complete calls.
func (rs *ReadySet) Uncomplete(t int) {
	for _, d := range rs.g.Succ[t] {
		if rs.pending[d.To] == 0 {
			for i, x := range rs.ready {
				if x == d.To {
					rs.ready = append(rs.ready[:i], rs.ready[i+1:]...)
					break
				}
			}
		}
		rs.pending[d.To]++
	}
	i := sort.SearchInts(rs.ready, t)
	rs.ready = append(rs.ready, 0)
	copy(rs.ready[i+1:], rs.ready[i:])
	rs.ready[i] = t
}

// Complete marks task t as placed, removing it from the frontier and
// adding any newly ready successors.
func (rs *ReadySet) Complete(t int) {
	for i, x := range rs.ready {
		if x == t {
			rs.ready = append(rs.ready[:i], rs.ready[i+1:]...)
			break
		}
	}
	for _, d := range rs.g.Succ[t] {
		rs.pending[d.To]--
		if rs.pending[d.To] == 0 {
			// Insert keeping the frontier sorted for determinism.
			i := sort.SearchInts(rs.ready, d.To)
			rs.ready = append(rs.ready, 0)
			copy(rs.ready[i+1:], rs.ready[i:])
			rs.ready[i] = d.To
		}
	}
}
