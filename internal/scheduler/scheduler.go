// Package scheduler defines the common interface every scheduling
// algorithm implements, a registry used by the CLI and the experiment
// drivers, and the shared priority computations (upward rank, downward
// rank, static level) that the list schedulers build on.
//
// It also owns Scratch, the per-worker bundle of reusable hot-path
// buffers (precomputed graph.Tables, the schedule.Builder arena,
// rank/order/ready-set slices, per-algorithm extension state) and its
// EvalCache, which memoizes the rank vectors per (instance, table
// generation) so consecutive schedulers evaluating identical tables —
// a PISA target/baseline pair — share one rank computation. The two
// Scratch invariants: one per goroutine, never shared — runner.MapState
// hands each worker its own — and scratch state must never influence
// results, only who allocates; sweeps stay bit-identical with or
// without one (and with the cache on or off).
package scheduler

import (
	"fmt"
	"slices"
	"sort"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// Scheduler is the common interface for every algorithm (Table I of the
// paper). Schedule must return a schedule that satisfies
// schedule.Validate for any valid instance, or an error if the instance
// is outside the algorithm's supported size (BruteForce, SMT).
type Scheduler interface {
	Name() string
	Schedule(inst *graph.Instance) (*schedule.Schedule, error)
}

// Requirements describes the network homogeneity an algorithm was
// designed for. PISA uses it to restrict perturbations (Section VI): for
// algorithms designed for homogeneous node speeds the node weights are
// pinned to 1, and likewise for homogeneous link strengths.
type Requirements struct {
	HomogeneousNodes bool
	HomogeneousLinks bool
}

// Constrained is implemented by schedulers with homogeneity requirements.
type Constrained interface {
	Requirements() Requirements
}

// RequirementsOf returns the scheduler's requirements, or the zero value
// (fully heterogeneous) if it declares none.
func RequirementsOf(s Scheduler) Requirements {
	if c, ok := s.(Constrained); ok {
		return c.Requirements()
	}
	return Requirements{}
}

// ScratchScheduler is implemented by algorithms whose Schedule can run
// against caller-owned reusable state: the precomputed tables, builder
// and buffers of a Scratch, writing the result into a caller-owned
// Schedule. A warm (scratch, out) pair makes the whole call
// allocation-free, which is what the PISA inner loop needs. The
// schedules produced are bit-identical to the plain Schedule path.
type ScratchScheduler interface {
	Scheduler
	ScheduleScratch(inst *graph.Instance, scr *Scratch, out *schedule.Schedule) error
}

// ScheduleInto runs s on inst, reusing scr and writing into out. It
// takes the allocation-free path when s implements ScratchScheduler and
// falls back to a plain Schedule call (copying the result into out)
// otherwise, so callers can thread scratch through mixed rosters.
func ScheduleInto(s Scheduler, inst *graph.Instance, scr *Scratch, out *schedule.Schedule) error {
	if ss, ok := s.(ScratchScheduler); ok {
		return ss.ScheduleScratch(inst, scr, out)
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		return err
	}
	out.CopyFrom(sch)
	return nil
}

// RunScratch is the plain-Schedule implementation shared by every
// scratch-aware algorithm: a fresh scratch and schedule per call. The
// single code path guarantees Schedule and ScheduleScratch cannot
// diverge.
func RunScratch(s ScratchScheduler, inst *graph.Instance) (*schedule.Schedule, error) {
	out := &schedule.Schedule{}
	if err := s.ScheduleScratch(inst, NewScratch(), out); err != nil {
		return nil, err
	}
	return out, nil
}

// Func adapts a plain function into a Scheduler.
type Func struct {
	SchedName string
	Fn        func(*graph.Instance) (*schedule.Schedule, error)
}

// Name implements Scheduler.
func (f Func) Name() string { return f.SchedName }

// Schedule implements Scheduler.
func (f Func) Schedule(inst *graph.Instance) (*schedule.Schedule, error) { return f.Fn(inst) }

// registry maps scheduler names to factories.
var registry = map[string]func() Scheduler{}

// Register adds a scheduler factory under its name. It panics on
// duplicates; registration happens from package init functions.
func Register(name string, factory func() Scheduler) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheduler: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New instantiates a registered scheduler by name.
func New(name string) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scheduler: unknown scheduler %q", name)
	}
	return f(), nil
}

// Names returns all registered scheduler names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// UpwardRank computes HEFT's rank_u for every task: the average execution
// time of the task plus the maximum over successors of average
// communication time plus the successor's rank. Sink tasks have rank
// equal to their average execution time.
func UpwardRank(inst *graph.Instance) []float64 {
	var tab graph.Tables
	tab.Build(inst)
	return UpwardRankInto(inst, &tab, nil)
}

// UpwardRankInto is UpwardRank reading the precomputed tables and
// writing into dst (grown as needed) — the allocation-free hot path.
func UpwardRankInto(inst *graph.Instance, tab *graph.Tables, dst []float64) []float64 {
	g := inst.Graph
	rank := growFloats(dst, g.NumTasks())
	if tab.TopoErr != nil {
		panic("scheduler: UpwardRank on cyclic graph: " + tab.TopoErr.Error())
	}
	tab.EnsureAvgComm()
	order := tab.Topo
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for j, d := range g.Succ[t] {
			v := tab.AvgCommSucc(t, j) + rank[d.To]
			if v > best {
				best = v
			}
		}
		rank[t] = tab.AvgExec[t] + best
	}
	return rank
}

// DownwardRank computes CPoP's rank_d for every task: the length of the
// longest average-time path from an entry task to (but not including)
// the task itself. Entry tasks have rank 0.
func DownwardRank(inst *graph.Instance) []float64 {
	var tab graph.Tables
	tab.Build(inst)
	return DownwardRankInto(inst, &tab, nil)
}

// DownwardRankInto is DownwardRank reading the precomputed tables and
// writing into dst.
func DownwardRankInto(inst *graph.Instance, tab *graph.Tables, dst []float64) []float64 {
	g := inst.Graph
	rank := growFloats(dst, g.NumTasks())
	if tab.TopoErr != nil {
		panic("scheduler: DownwardRank on cyclic graph: " + tab.TopoErr.Error())
	}
	tab.EnsureAvgComm()
	for _, t := range tab.Topo {
		best := 0.0
		for j, d := range g.Pred[t] {
			u := d.To
			v := rank[u] + tab.AvgExec[u] + tab.AvgCommPred(t, j)
			if v > best {
				best = v
			}
		}
		rank[t] = best
	}
	return rank
}

// StaticLevel computes the communication-free static level used by
// GDL/DLS and FCP: SL(t) = avg exec(t) + max over successors SL(s).
func StaticLevel(inst *graph.Instance) []float64 {
	var tab graph.Tables
	tab.Build(inst)
	return StaticLevelInto(inst, &tab, nil)
}

// StaticLevelInto is StaticLevel reading the precomputed tables and
// writing into dst.
func StaticLevelInto(inst *graph.Instance, tab *graph.Tables, dst []float64) []float64 {
	g := inst.Graph
	sl := growFloats(dst, g.NumTasks())
	if tab.TopoErr != nil {
		panic("scheduler: StaticLevel on cyclic graph: " + tab.TopoErr.Error())
	}
	order := tab.Topo
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, d := range g.Succ[t] {
			if sl[d.To] > best {
				best = sl[d.To]
			}
		}
		sl[t] = tab.AvgExec[t] + best
	}
	return sl
}

// growFloats returns dst resized to n, reusing capacity.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// OrderByPriority returns task indices sorted by decreasing priority,
// breaking ties toward the lower task index. The result is always a valid
// topological order when the priorities are strictly decreasing along
// edges (true for UpwardRank on graphs with positive task costs). The
// (priority desc, index asc) comparison is a total order over distinct
// indices, so the typed unstable sort is deterministic.
func OrderByPriority(priority []float64) []int {
	order := make([]int, len(priority))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case priority[a] > priority[b]:
			return -1
		case priority[a] < priority[b]:
			return 1
		}
		return a - b
	})
	return order
}

// TopoOrderByPriority returns a topological order of g that always picks,
// among the currently ready tasks, the one with the highest priority
// (ties toward the lower task index). For priorities that strictly
// decrease along edges — upward rank on graphs with positive task costs —
// this coincides with a plain descending sort, but unlike a plain sort it
// remains a valid topological order when zero-cost tasks produce rank
// ties (which PISA's weight perturbations readily create).
func TopoOrderByPriority(g *graph.TaskGraph, priority []float64) []int {
	rs := NewReadySet(g)
	return topoOrderByPriority(rs, g, priority, make([]int, 0, g.NumTasks()))
}

// topoOrderByPriority appends the priority topological order to dst
// using the caller's ready set (the buffer-reuse core shared with
// Scratch.TopoOrderByPriority).
func topoOrderByPriority(rs *ReadySet, g *graph.TaskGraph, priority []float64, dst []int) []int {
	for !rs.Empty() {
		ready := rs.Ready()
		best := ready[0]
		for _, t := range ready[1:] {
			if priority[t] > priority[best] {
				best = t
			}
		}
		dst = append(dst, best)
		rs.Complete(best)
	}
	if len(dst) != g.NumTasks() {
		panic("scheduler: TopoOrderByPriority on cyclic graph")
	}
	return dst
}

// ReadySet maintains the frontier of schedulable tasks (all prerequisites
// placed) for schedulers that make dynamic choices among ready tasks.
type ReadySet struct {
	g       *graph.TaskGraph
	pending []int // remaining unplaced predecessor count per task
	ready   []int // current frontier, kept sorted by task index
}

// NewReadySet builds the frontier for the graph: initially its source
// tasks.
func NewReadySet(g *graph.TaskGraph) *ReadySet {
	rs := &ReadySet{}
	rs.Reset(g)
	return rs
}

// Reset rebinds the set to g and rebuilds the initial frontier, reusing
// the set's storage.
func (rs *ReadySet) Reset(g *graph.TaskGraph) {
	n := g.NumTasks()
	rs.g = g
	if cap(rs.pending) < n {
		rs.pending = make([]int, n)
	} else {
		rs.pending = rs.pending[:n]
	}
	rs.ready = rs.ready[:0]
	for t := 0; t < n; t++ {
		rs.pending[t] = len(g.Pred[t])
		if rs.pending[t] == 0 {
			rs.ready = append(rs.ready, t)
		}
	}
}

// Ready returns the current frontier (sorted by task index). The slice is
// owned by the set; callers must not mutate it.
func (rs *ReadySet) Ready() []int { return rs.ready }

// Empty reports whether no tasks remain ready.
func (rs *ReadySet) Empty() bool { return len(rs.ready) == 0 }

// Uncomplete reverses Complete(t): successors that became ready when t
// completed leave the frontier and t rejoins it. It is used by
// backtracking searches (package exact). The caller must undo completions
// in LIFO order relative to Complete calls.
func (rs *ReadySet) Uncomplete(t int) {
	for _, d := range rs.g.Succ[t] {
		if rs.pending[d.To] == 0 {
			for i, x := range rs.ready {
				if x == d.To {
					rs.ready = append(rs.ready[:i], rs.ready[i+1:]...)
					break
				}
			}
		}
		rs.pending[d.To]++
	}
	i := sort.SearchInts(rs.ready, t)
	rs.ready = append(rs.ready, 0)
	copy(rs.ready[i+1:], rs.ready[i:])
	rs.ready[i] = t
}

// Complete marks task t as placed, removing it from the frontier and
// adding any newly ready successors.
func (rs *ReadySet) Complete(t int) {
	for i, x := range rs.ready {
		if x == t {
			rs.ready = append(rs.ready[:i], rs.ready[i+1:]...)
			break
		}
	}
	for _, d := range rs.g.Succ[t] {
		rs.pending[d.To]--
		if rs.pending[d.To] == 0 {
			// Insert keeping the frontier sorted for determinism.
			i := sort.SearchInts(rs.ready, d.To)
			rs.ready = append(rs.ready, 0)
			copy(rs.ready[i+1:], rs.ready[i:])
			rs.ready[i] = d.To
		}
	}
}
