package scheduler

import (
	"testing"

	"saga/internal/graph"
	"saga/internal/rng"
)

// cacheTestInstance builds a randomized layered DAG over a heterogeneous
// network, sized so every rank vector has real structure to diverge on.
func cacheTestInstance(r *rng.RNG) *graph.Instance {
	g := graph.NewTaskGraph()
	const layers, width = 4, 4
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			t := g.AddTask("t", 0.1+r.Float64())
			if l > 0 {
				for k := 0; k < 1+r.Intn(2); k++ {
					p := (l-1)*width + r.Intn(width)
					if !g.HasDep(p, t) {
						g.MustAddDep(p, t, 0.1+r.Float64())
					}
				}
			}
		}
	}
	net := graph.NewNetwork(4)
	for v := range net.Speeds {
		net.Speeds[v] = 0.2 + r.Float64()
		for u := v + 1; u < net.NumNodes(); u++ {
			net.SetLink(v, u, 0.2+r.Float64())
		}
	}
	return graph.NewInstance(g, net)
}

func assertSameValues(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestEvalCacheHitsWithinPair pins the tentpole behavior: with the
// tables unchanged between calls, the second and every later rank read
// is served from the cache (hit counters advance, values identical to
// the uncached computation), exactly what the baseline scheduler of a
// PISA pair sees after the target ranked the same candidate.
func TestEvalCacheHitsWithinPair(t *testing.T) {
	inst := cacheTestInstance(rng.New(0xca11))
	s := NewScratch()

	first := s.UpwardRank(inst)
	want := UpwardRank(inst) // fresh tables, no cache
	assertSameValues(t, "UpwardRank(miss)", first, want)
	if c := s.EvalCache(); c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("after first read: hits=%d misses=%d, want 0/1", c.Hits, c.Misses)
	}

	second := s.UpwardRank(inst)
	assertSameValues(t, "UpwardRank(hit)", second, want)
	if c := s.EvalCache(); c.Hits != 1 {
		t.Fatalf("second identical read missed the cache (hits=%d misses=%d)", c.Hits, c.Misses)
	}

	// Distinct vectors have distinct memo slots under the same key.
	assertSameValues(t, "DownwardRank(miss)", s.DownwardRank(inst), DownwardRank(inst))
	assertSameValues(t, "StaticLevel(miss)", s.StaticLevel(inst), StaticLevel(inst))
	assertSameValues(t, "DownwardRank(hit)", s.DownwardRank(inst), DownwardRank(inst))
	if c := s.EvalCache(); c.Hits != 2 || c.Misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 2/3", c.Hits, c.Misses)
	}
}

// TestEvalCacheStaleReadsImpossible is the invalidation property test:
// a long random walk of in-place mutations, each mirrored through the
// matching Tables patch per the staleness contract, after which the
// cached rank reads must equal a from-scratch computation every single
// time. Any patch path that failed to bump Generation would serve the
// previous candidate's ranks here.
func TestEvalCacheStaleReadsImpossible(t *testing.T) {
	r := rng.New(0x57a1e)
	inst := cacheTestInstance(r)
	s := NewScratch()
	tab := s.Tables(inst)

	check := func(step int) {
		t.Helper()
		assertSameValues(t, "UpwardRank", s.UpwardRank(inst), UpwardRank(inst))
		assertSameValues(t, "DownwardRank", s.DownwardRank(inst), DownwardRank(inst))
		assertSameValues(t, "StaticLevel", s.StaticLevel(inst), StaticLevel(inst))
	}

	check(-1)
	for step := 0; step < 300; step++ {
		switch r.Intn(6) {
		case 0:
			v := r.Intn(inst.Net.NumNodes())
			inst.Net.Speeds[v] = 0.2 + r.Float64()
			tab.UpdateNodeSpeed(v)
		case 1:
			n := inst.Net.NumNodes()
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			inst.Net.SetLink(u, v, 0.2+r.Float64())
			tab.UpdateLinkSpeed(u, v)
		case 2:
			task := r.Intn(inst.Graph.NumTasks())
			inst.Graph.Tasks[task].Cost = 0.1 + r.Float64()
			tab.UpdateTaskWeight(task)
		case 3:
			if inst.Graph.NumDeps() == 0 {
				continue
			}
			u, v := inst.Graph.DepAt(r.Intn(inst.Graph.NumDeps()))
			inst.Graph.SetDepCost(u, v, 0.1+r.Float64())
			tab.UpdateDepWeight(u, v)
		case 4:
			n := inst.Graph.NumTasks()
			u, v := r.Intn(n), r.Intn(n)
			if u == v || inst.Graph.HasDep(u, v) || inst.Graph.Reaches(v, u) {
				continue
			}
			inst.Graph.AddDepUnchecked(u, v, 0.1+r.Float64())
			tab.AddDep(u, v)
		case 5:
			if inst.Graph.NumDeps() == 0 {
				continue
			}
			u, v := inst.Graph.DepAt(r.Intn(inst.Graph.NumDeps()))
			inst.Graph.RemoveDep(u, v)
			tab.RemoveDep(u, v)
		}
		check(step)
	}
}

// TestEvalCacheDisabled pins the reference-path escape hatch: with the
// cache off, every read recomputes (no hits), values are unchanged, and
// re-enabling restores memoization without any staleness window.
func TestEvalCacheDisabled(t *testing.T) {
	inst := cacheTestInstance(rng.New(0xd15))
	s := NewScratch()
	if prev := s.SetEvalCache(false); !prev {
		t.Fatal("cache should be enabled by default")
	}
	want := UpwardRank(inst)
	assertSameValues(t, "disabled#1", s.UpwardRank(inst), want)
	assertSameValues(t, "disabled#2", s.UpwardRank(inst), want)
	if c := s.EvalCache(); c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d, want 0/2", c.Hits, c.Misses)
	}
	if prev := s.SetEvalCache(true); prev {
		t.Fatal("SetEvalCache(false) did not report disabled afterwards")
	}
	assertSameValues(t, "re-enabled miss", s.UpwardRank(inst), want)
	assertSameValues(t, "re-enabled hit", s.UpwardRank(inst), want)
	if c := s.EvalCache(); c.Hits != 1 {
		t.Fatalf("re-enabled cache never hit (hits=%d misses=%d)", c.Hits, c.Misses)
	}
}

// TestEvalCacheInstanceSwitch pins the key's instance half: alternating
// between two instances through one scratch always yields each
// instance's own ranks (the rebuild bumps the generation, so a stale
// cross-instance hit is impossible even though the pointer alternates).
func TestEvalCacheInstanceSwitch(t *testing.T) {
	r := rng.New(0x2ca)
	a, b := cacheTestInstance(r), cacheTestInstance(r)
	wantA, wantB := UpwardRank(a), UpwardRank(b)
	s := NewScratch()
	for i := 0; i < 4; i++ {
		assertSameValues(t, "instance A", s.UpwardRank(a), wantA)
		assertSameValues(t, "instance B", s.UpwardRank(b), wantB)
	}
	if c := s.EvalCache(); c.Hits != 0 {
		t.Fatalf("alternating instances produced %d stale-prone hits", c.Hits)
	}
}

func assertSameOrder(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
}

// TestTopoOrderMemoHitsPerRankKind pins the priority-order memo: sorting
// by a scratch-owned rank vector is computed once per (instance,
// generation) per rank kind, each kind in its own buffer, and always
// equal to the unmemoized package function.
func TestTopoOrderMemoHitsPerRankKind(t *testing.T) {
	inst := cacheTestInstance(rng.New(0x70b0))
	s := NewScratch()

	up := s.UpwardRank(inst)
	wantUp := TopoOrderByPriority(inst.Graph, up)
	assertSameOrder(t, "topo(up, miss)", s.TopoOrderByPriority(inst.Graph, up), wantUp)
	c := s.EvalCache()
	h, m := c.Hits, c.Misses
	assertSameOrder(t, "topo(up, hit)", s.TopoOrderByPriority(inst.Graph, up), wantUp)
	if c.Hits != h+1 || c.Misses != m {
		t.Fatalf("repeat topo sort missed the memo (hits %d→%d, misses %d→%d)", h, c.Hits, m, c.Misses)
	}

	// A different rank kind gets its own slot; revisiting the first kind
	// afterwards still hits — the buffers are per kind, not shared.
	down := s.DownwardRank(inst)
	wantDown := TopoOrderByPriority(inst.Graph, down)
	assertSameOrder(t, "topo(down, miss)", s.TopoOrderByPriority(inst.Graph, down), wantDown)
	assertSameOrder(t, "topo(up, hit #2)", s.TopoOrderByPriority(inst.Graph, up), wantUp)

	// A caller-owned priority slice (CPoP's combined priority) is never
	// memoized: equal values, different buffer, so it recomputes into the
	// generic order buffer without touching the memos.
	foreign := append([]float64(nil), up...)
	assertSameOrder(t, "topo(foreign)", s.TopoOrderByPriority(inst.Graph, foreign), wantUp)
	assertSameOrder(t, "topo(up, hit #3)", s.TopoOrderByPriority(inst.Graph, up), wantUp)
}

// TestTopoOrderMemoStaleReadsImpossible mirrors the rank invalidation
// property test for the derived orders: every table patch must drop the
// memoized order along with the ranks.
func TestTopoOrderMemoStaleReadsImpossible(t *testing.T) {
	r := rng.New(0x70b1)
	inst := cacheTestInstance(r)
	s := NewScratch()
	tab := s.Tables(inst)
	for step := 0; step < 100; step++ {
		v := r.Intn(inst.Net.NumNodes())
		inst.Net.Speeds[v] = 0.2 + r.Float64()
		tab.UpdateNodeSpeed(v)
		up := s.UpwardRank(inst)
		want := TopoOrderByPriority(inst.Graph, up)
		assertSameOrder(t, "topo after patch", s.TopoOrderByPriority(inst.Graph, up), want)
		assertSameOrder(t, "topo after patch (hit)", s.TopoOrderByPriority(inst.Graph, up), want)
	}
}

// TestTopoOrderMemoDisabled: with the cache off, the derived orders
// recompute every time just like the ranks — the reference paths stay
// genuinely unmemoized.
func TestTopoOrderMemoDisabled(t *testing.T) {
	inst := cacheTestInstance(rng.New(0x70b2))
	s := NewScratch()
	s.SetEvalCache(false)
	up := s.UpwardRank(inst)
	want := TopoOrderByPriority(inst.Graph, up)
	assertSameOrder(t, "disabled#1", s.TopoOrderByPriority(inst.Graph, up), want)
	assertSameOrder(t, "disabled#2", s.TopoOrderByPriority(inst.Graph, up), want)
	if c := s.EvalCache(); c.Hits != 0 {
		t.Fatalf("disabled cache served %d hits", c.Hits)
	}
}

// TestEvalCacheZeroAllocSteadyState: memoization must not cost the
// zero-allocation property of the scheduling hot path — a warm hit is
// pointer comparisons and counter bumps only.
func TestEvalCacheZeroAllocSteadyState(t *testing.T) {
	inst := cacheTestInstance(rng.New(0xa110c))
	s := NewScratch()
	s.UpwardRank(inst)
	s.TopoOrderByPriority(inst.Graph, s.UpwardRank(inst))
	allocs := testing.AllocsPerRun(200, func() {
		s.TopoOrderByPriority(inst.Graph, s.UpwardRank(inst))
		s.DownwardRank(inst)
		s.StaticLevel(inst)
	})
	if allocs != 0 {
		t.Fatalf("warm memoized rank reads allocate %.2f/op; want 0", allocs)
	}
}
