// Package wfc reads and writes a pragmatic subset of the WfCommons
// workflow instance format (wfformat), the JSON schema behind the
// Pegasus/Makeflow execution traces the paper's scientific-workflow
// datasets are generated from. Supporting the real interchange format
// means actual wfcommons instances — and instances exported from this
// repository — can flow between SAGA, PISA and other tools.
//
// The subset covers what the scheduling model consumes: task names,
// runtimes, parent lists, input/output files with sizes (from which
// dependency data sizes are derived, matching WfCommons semantics:
// the data exchanged between two dependent tasks is the total size of
// files the parent writes and the child reads), and machine speeds.
package wfc

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"saga/internal/graph"
)

// File is one input or output file of a task.
type File struct {
	Name string `json:"name"`
	// Link is "input" or "output".
	Link string `json:"link"`
	// SizeInBytes is the file size.
	SizeInBytes float64 `json:"sizeInBytes"`
}

// Task is one workflow task.
type Task struct {
	Name string `json:"name"`
	ID   string `json:"id"`
	// RuntimeInSeconds is the measured or synthetic task runtime.
	RuntimeInSeconds float64 `json:"runtimeInSeconds"`
	// Parents lists prerequisite task IDs.
	Parents []string `json:"parents"`
	Files   []File   `json:"files,omitempty"`
}

// Machine is one compute resource.
type Machine struct {
	NodeName string `json:"nodeName"`
	// Speed is a relative CPU speed factor (1.0 = reference machine).
	Speed float64 `json:"speed"`
}

// Workflow is the wfformat workflow body.
type Workflow struct {
	Tasks    []Task    `json:"tasks"`
	Machines []Machine `json:"machines,omitempty"`
}

// Instance is the wfformat document root.
type Instance struct {
	Name          string   `json:"name"`
	SchemaVersion string   `json:"schemaVersion"`
	Workflow      Workflow `json:"workflow"`
}

// Parse decodes a wfformat document. Gzip-compressed documents (the
// form wfcommons distributes its trace archives in, sniffed by the
// 0x1f 0x8b magic bytes) are decompressed transparently, so every
// caller of this single reader path accepts .json and .json.gz alike.
func Parse(data []byte) (*Instance, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("wfc: bad gzip document: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("wfc: bad gzip document: %w", err)
		}
		data = raw
	}
	var inst Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		return nil, fmt.Errorf("wfc: %w", err)
	}
	if len(inst.Workflow.Tasks) == 0 {
		return nil, fmt.Errorf("wfc: workflow %q has no tasks", inst.Name)
	}
	return &inst, nil
}

// ToTaskGraph converts the workflow into the scheduling model's task
// graph. Task compute cost is the runtime in seconds (cost on a speed-1
// node). The data size of dependency (u, v) is the total size of files
// that u outputs and v inputs; dependencies whose tasks share no files
// get data size 0 (pure control dependencies).
func (in *Instance) ToTaskGraph() (*graph.TaskGraph, error) {
	g := graph.NewTaskGraph()
	index := make(map[string]int, len(in.Workflow.Tasks))
	for _, t := range in.Workflow.Tasks {
		id := t.ID
		if id == "" {
			id = t.Name
		}
		if id == "" {
			return nil, fmt.Errorf("wfc: task with neither id nor name")
		}
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("wfc: duplicate task id %q", id)
		}
		if t.RuntimeInSeconds < 0 {
			return nil, fmt.Errorf("wfc: task %q has negative runtime", id)
		}
		name := t.Name
		if name == "" {
			name = id
		}
		index[id] = g.AddTask(name, t.RuntimeInSeconds)
	}

	// File production index: file name → producing task.
	producer := map[string]int{}
	outSize := map[string]float64{}
	for _, t := range in.Workflow.Tasks {
		id := t.ID
		if id == "" {
			id = t.Name
		}
		for _, f := range t.Files {
			if f.Link == "output" {
				producer[f.Name] = index[id]
				outSize[f.Name] = f.SizeInBytes
			}
		}
	}

	for _, t := range in.Workflow.Tasks {
		id := t.ID
		if id == "" {
			id = t.Name
		}
		child := index[id]
		// Data volume per parent: files this task inputs that the parent
		// outputs.
		volume := map[int]float64{}
		for _, f := range t.Files {
			if f.Link != "input" {
				continue
			}
			if p, ok := producer[f.Name]; ok && p != child {
				size := f.SizeInBytes
				if size == 0 {
					size = outSize[f.Name]
				}
				volume[p] += size
			}
		}
		for _, pid := range t.Parents {
			p, ok := index[pid]
			if !ok {
				return nil, fmt.Errorf("wfc: task %q references unknown parent %q", id, pid)
			}
			if err := g.AddDep(p, child, volume[p]); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ToNetwork builds a complete network from the instance's machines with
// the given uniform link strength (WfCommons traces carry no link data;
// the paper sets homogeneous rates per target CCR). It returns nil if no
// machines are listed.
func (in *Instance) ToNetwork(linkStrength float64) *graph.Network {
	ms := in.Workflow.Machines
	if len(ms) == 0 {
		return nil
	}
	net := graph.NewNetwork(len(ms))
	for v, m := range ms {
		s := m.Speed
		if s <= 0 {
			s = 1
		}
		net.Speeds[v] = s
		for u := 0; u < v; u++ {
			net.SetLink(u, v, linkStrength)
		}
	}
	return net
}

// FromTaskGraph converts a scheduling-model task graph back into a
// wfformat document. Each dependency (u, v) with positive data size
// becomes one file, output by u and input by v, named after the edge.
func FromTaskGraph(name string, g *graph.TaskGraph) *Instance {
	inst := &Instance{
		Name:          name,
		SchemaVersion: "1.4",
	}
	ids := make([]string, g.NumTasks())
	for t := range g.Tasks {
		ids[t] = fmt.Sprintf("task%05d", t)
	}
	for t, task := range g.Tasks {
		wt := Task{
			Name:             task.Name,
			ID:               ids[t],
			RuntimeInSeconds: task.Cost,
		}
		for _, d := range g.Pred[t] {
			wt.Parents = append(wt.Parents, ids[d.To])
			if cost, _ := g.DepCost(d.To, t); cost > 0 {
				wt.Files = append(wt.Files, File{
					Name:        fmt.Sprintf("file_%s_%s", ids[d.To], ids[t]),
					Link:        "input",
					SizeInBytes: cost,
				})
			}
		}
		for _, d := range g.Succ[t] {
			if d.Cost > 0 {
				wt.Files = append(wt.Files, File{
					Name:        fmt.Sprintf("file_%s_%s", ids[t], ids[d.To]),
					Link:        "output",
					SizeInBytes: d.Cost,
				})
			}
		}
		inst.Workflow.Tasks = append(inst.Workflow.Tasks, wt)
	}
	return inst
}

// Marshal encodes the instance as indented JSON.
func (in *Instance) Marshal() ([]byte, error) {
	return json.MarshalIndent(in, "", "  ")
}
