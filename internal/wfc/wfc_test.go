package wfc_test

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/wfc"
)

const fixture = `{
  "name": "toy-blast",
  "schemaVersion": "1.4",
  "workflow": {
    "tasks": [
      {"name": "split", "id": "t0", "runtimeInSeconds": 5,
       "files": [{"name": "chunk1", "link": "output", "sizeInBytes": 100},
                 {"name": "chunk2", "link": "output", "sizeInBytes": 200}]},
      {"name": "blast1", "id": "t1", "runtimeInSeconds": 50, "parents": ["t0"],
       "files": [{"name": "chunk1", "link": "input", "sizeInBytes": 100},
                 {"name": "hits1", "link": "output", "sizeInBytes": 30}]},
      {"name": "blast2", "id": "t2", "runtimeInSeconds": 60, "parents": ["t0"],
       "files": [{"name": "chunk2", "link": "input", "sizeInBytes": 200},
                 {"name": "hits2", "link": "output", "sizeInBytes": 40}]},
      {"name": "cat", "id": "t3", "runtimeInSeconds": 4, "parents": ["t1", "t2"],
       "files": [{"name": "hits1", "link": "input", "sizeInBytes": 30},
                 {"name": "hits2", "link": "input", "sizeInBytes": 40}]}
    ],
    "machines": [
      {"nodeName": "m1", "speed": 1.0},
      {"nodeName": "m2", "speed": 2.5}
    ]
  }
}`

func TestParseAndConvert(t *testing.T) {
	inst, err := wfc.Parse([]byte(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "toy-blast" || len(inst.Workflow.Tasks) != 4 {
		t.Fatalf("parsed %q with %d tasks", inst.Name, len(inst.Workflow.Tasks))
	}
	g, err := inst.ToTaskGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 4 || g.NumDeps() != 4 {
		t.Fatalf("graph has %d tasks, %d deps", g.NumTasks(), g.NumDeps())
	}
	// Dependency data sizes come from matched files.
	if c, ok := g.DepCost(0, 1); !ok || c != 100 {
		t.Fatalf("dep (split, blast1) = %v, want 100", c)
	}
	if c, ok := g.DepCost(0, 2); !ok || c != 200 {
		t.Fatalf("dep (split, blast2) = %v, want 200", c)
	}
	if c, ok := g.DepCost(1, 3); !ok || c != 30 {
		t.Fatalf("dep (blast1, cat) = %v, want 30", c)
	}
	if c, ok := g.DepCost(2, 3); !ok || c != 40 {
		t.Fatalf("dep (blast2, cat) = %v, want 40", c)
	}
	if g.Tasks[2].Cost != 60 {
		t.Fatalf("blast2 runtime = %v", g.Tasks[2].Cost)
	}
}

func TestToNetwork(t *testing.T) {
	inst, err := wfc.Parse([]byte(fixture))
	if err != nil {
		t.Fatal(err)
	}
	net := inst.ToNetwork(10)
	if net == nil || net.NumNodes() != 2 {
		t.Fatalf("network = %+v", net)
	}
	if net.Speeds[1] != 2.5 {
		t.Fatalf("speed = %v", net.Speeds[1])
	}
	if net.Links[0][1] != 10 {
		t.Fatalf("link = %v", net.Links[0][1])
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// No machines → nil network.
	empty := &wfc.Instance{Workflow: wfc.Workflow{Tasks: []wfc.Task{{ID: "a"}}}}
	if empty.ToNetwork(1) != nil {
		t.Fatal("machine-less instance produced a network")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := wfc.Parse([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := wfc.Parse([]byte(`{"workflow": {"tasks": []}}`)); err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestParseGzipDocument(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(fixture)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	inst, err := wfc.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name != "toy-blast" || len(inst.Workflow.Tasks) != 4 {
		t.Fatalf("gzip parse: %q with %d tasks", inst.Name, len(inst.Workflow.Tasks))
	}
	// Truncated and magic-only inputs fail cleanly, never panic.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := wfc.Parse(trunc); err == nil {
		t.Fatal("truncated gzip accepted")
	}
	if _, err := wfc.Parse([]byte{0x1f, 0x8b}); err == nil {
		t.Fatal("bare gzip magic accepted")
	}
}

func TestToTaskGraphErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unknown parent", `{"workflow":{"tasks":[
			{"id":"a","runtimeInSeconds":1,"parents":["ghost"]}]}}`},
		{"duplicate id", `{"workflow":{"tasks":[
			{"id":"a","runtimeInSeconds":1},{"id":"a","runtimeInSeconds":1}]}}`},
		{"negative runtime", `{"workflow":{"tasks":[
			{"id":"a","runtimeInSeconds":-3}]}}`},
		{"cyclic parents", `{"workflow":{"tasks":[
			{"id":"a","runtimeInSeconds":1,"parents":["b"]},
			{"id":"b","runtimeInSeconds":1,"parents":["a"]}]}}`},
		{"anonymous task", `{"workflow":{"tasks":[{"runtimeInSeconds":1}]}}`},
	}
	for _, c := range cases {
		inst, err := wfc.Parse([]byte(c.body))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := inst.ToTaskGraph(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestRoundTripFromRecipes(t *testing.T) {
	// Every workflow recipe must survive export → parse → convert with
	// identical structure and weights.
	r := rng.New(77)
	for _, name := range datasets.WorkflowNames {
		g, err := datasets.WorkflowRecipe(name, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		doc := wfc.FromTaskGraph(name, g)
		data, err := doc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := wfc.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, err := parsed.ToTaskGraph()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumDeps() != g.NumDeps() {
			t.Fatalf("%s: structure changed: %d/%d tasks, %d/%d deps",
				name, g2.NumTasks(), g.NumTasks(), g2.NumDeps(), g.NumDeps())
		}
		for tk := range g.Tasks {
			if !graph.ApproxEq(g2.Tasks[tk].Cost, g.Tasks[tk].Cost) {
				t.Fatalf("%s: task %d cost changed", name, tk)
			}
		}
		for _, d := range g.Deps() {
			want, _ := g.DepCost(d[0], d[1])
			got, ok := g2.DepCost(d[0], d[1])
			if !ok || !graph.ApproxEq(got, want) {
				t.Fatalf("%s: dep (%d,%d) = %v, want %v", name, d[0], d[1], got, want)
			}
		}
	}
}

func TestExportContainsSchemaVersion(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	g.MustAddDep(a, b, 3)
	doc := wfc.FromTaskGraph("tiny", g)
	data, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schemaVersion": "1.4"`) {
		t.Fatalf("export missing schema version:\n%s", data)
	}
	if !strings.Contains(string(data), `"link": "output"`) {
		t.Fatalf("export missing output file:\n%s", data)
	}
}

func TestZeroSizeDependencyBecomesControlEdge(t *testing.T) {
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	g.MustAddDep(a, b, 0) // control dependency, no data
	doc := wfc.FromTaskGraph("ctl", g)
	data, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := wfc.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := parsed.ToTaskGraph()
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := g2.DepCost(0, 1); !ok || c != 0 {
		t.Fatalf("control edge = %v (%v), want 0", c, ok)
	}
}
