package wfc

// Satellite: a Go-native fuzz target over the wfformat ingestion path —
// the daemon feeds attacker-controlled bytes straight into Parse, so
// the whole chain (Parse → ToTaskGraph → ToNetwork → Instance.Validate
// → Marshal round trip) must reject garbage with errors, never panics.
// Seeds come from the committed WfCommons fixtures in testdata/ plus
// hand-written adversarial documents; `make fuzz-short` runs the
// mutation engine for a bounded slice of CI time, and the corpus under
// testdata/fuzz/ (when the engine finds anything) is committed like any
// other regression.

import (
	"os"
	"path/filepath"
	"testing"

	"saga/internal/graph"
)

func FuzzParse(f *testing.F) {
	// Every committed fixture is a seed.
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(fixtures) == 0 {
		f.Fatal("no wfformat fixtures in testdata/")
	}
	for _, path := range fixtures {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Adversarial seeds: shapes that target each validation branch.
	for _, seed := range []string{
		``,
		`{}`,
		`null`,
		`{"workflow": {"tasks": []}}`,
		`{"workflow": {"tasks": [{"runtimeInSeconds": 1}]}}`,                                          // no id, no name
		`{"workflow": {"tasks": [{"name": "a"}, {"name": "a"}]}}`,                                     // duplicate id
		`{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": -1}]}}`,                            // negative runtime
		`{"workflow": {"tasks": [{"name": "a", "parents": ["ghost"]}]}}`,                              // unknown parent
		`{"workflow": {"tasks": [{"name": "a", "parents": ["a"]}]}}`,                                  // self-dependency
		`{"workflow": {"tasks": [{"name": "a", "parents": ["b"]}, {"name": "b", "parents": ["a"]}]}}`, // cycle
		`{"workflow": {"tasks": [{"name": "a", "parents": ["b", "b"]}, {"name": "b"}]}}`,              // duplicate parent
		`{"workflow": {"tasks": [{"name": "a", "runtimeInSeconds": 1e308}], "machines": [{"speed": -3}]}}`,
		`{"workflow": {"tasks": [{"name": "a", "files": [{"name": "f", "link": "input", "sizeInBytes": -5}]}]}}`,
		"\x1f\x8b",             // bare gzip magic — sniffed, then rejected
		"\x1f\x8b\x08\x00junk", // gzip header with a torn body
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err != nil {
			return // rejected cleanly
		}
		g, err := doc.ToTaskGraph()
		net := doc.ToNetwork(1)
		if err != nil {
			return
		}
		// A graph that converted must stand up as a full instance…
		if net == nil {
			net = graph.NewNetwork(2)
			net.SetLink(0, 1, 1)
		}
		inst := graph.NewInstance(g, net)
		if err := inst.Validate(); err != nil {
			return // degenerate weights are rejected, not scheduled
		}
		// …and survive the export round trip with its shape intact.
		back := FromTaskGraph(doc.Name, g)
		raw, err := back.Marshal()
		if err != nil {
			t.Fatalf("Marshal of converted graph failed: %v", err)
		}
		doc2, err := Parse(raw)
		if err != nil {
			t.Fatalf("round-tripped document does not re-parse: %v\n%s", err, raw)
		}
		g2, err := doc2.ToTaskGraph()
		if err != nil {
			t.Fatalf("round-tripped document does not re-convert: %v\n%s", err, raw)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumDeps() != g.NumDeps() {
			t.Fatalf("round trip changed the graph: %d tasks / %d deps became %d / %d",
				g.NumTasks(), g.NumDeps(), g2.NumTasks(), g2.NumDeps())
		}
	})
}
