package render

import (
	"fmt"
	"math"
	"strings"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// SVGOptions controls SVG Gantt rendering.
type SVGOptions struct {
	// Width and RowHeight are pixel dimensions (defaults 800 and 28).
	Width, RowHeight int
	// Title is drawn above the chart when non-empty.
	Title string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.RowHeight <= 0 {
		o.RowHeight = 28
	}
	return o
}

// palette cycles task fill colors (color-blind-safe Okabe-Ito hues).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#CC79A7",
	"#56B4E9", "#D55E00", "#F0E442", "#999999",
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// GanttSVG renders the schedule as a standalone SVG document: one lane
// per node, one rectangle per task, with a time axis. It is the vector
// counterpart of Gantt for figures that go into documents rather than
// terminals.
func GanttSVG(inst *graph.Instance, s *schedule.Schedule, opts SVGOptions) string {
	o := opts.withDefaults()
	makespan := s.Makespan()
	if makespan == 0 {
		makespan = 1
	}
	const labelW = 70
	const axisH = 24
	titleH := 0
	if o.Title != "" {
		titleH = 26
	}
	chartW := o.Width - labelW - 10
	height := titleH + s.NumNodes*o.RowHeight + axisH + 10
	scale := float64(chartW) / makespan

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n",
		o.Width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", o.Width, height)
	if o.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="17" font-size="14">%s</text>`+"\n", labelW, svgEscape(o.Title))
	}

	// Node lanes.
	for v := 0; v < s.NumNodes; v++ {
		y := titleH + v*o.RowHeight
		fill := "#f7f7f7"
		if v%2 == 1 {
			fill = "#ececec"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			labelW, y, chartW, o.RowHeight, fill)
		fmt.Fprintf(&b, `<text x="4" y="%d">node %d</text>`+"\n", y+o.RowHeight/2+4, v)
	}

	// Task rectangles.
	for _, a := range s.Assignments() {
		y := titleH + a.Node*o.RowHeight
		x := labelW + int(math.Round(a.Start*scale))
		w := int(math.Round((a.End - a.Start) * scale))
		if w < 2 {
			w = 2
		}
		color := palette[a.Task%len(palette)]
		name := svgEscape(inst.Graph.Tasks[a.Task].Name)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"><title>%s [%.3f, %.3f] on node %d</title></rect>`+"\n",
			x, y+3, w, o.RowHeight-6, color, name, a.Start, a.End, a.Node)
		if w > 8*len(name) {
			fmt.Fprintf(&b, `<text x="%d" y="%d" fill="white">%s</text>`+"\n",
				x+4, y+o.RowHeight/2+4, name)
		}
	}

	// Time axis with ~8 ticks.
	axisY := titleH + s.NumNodes*o.RowHeight
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		labelW, axisY, labelW+chartW, axisY)
	ticks := 8
	for i := 0; i <= ticks; i++ {
		tv := makespan * float64(i) / float64(ticks)
		x := labelW + int(math.Round(tv*scale))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
			x, axisY, x, axisY+4)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%.2f</text>`+"\n", x-12, axisY+18, tv)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// HeatmapSVG renders a ratio matrix as an SVG heatmap with the paper's
// color convention: white at ratio 1 through red at the 5.0 cap (values
// above the cap, including the ">1000" cells, saturate). Negative cells
// (the blank diagonal) render gray.
func HeatmapSVG(title string, rowLabels, colLabels []string, values [][]float64) string {
	const cell = 46
	const left = 110
	const top = 60
	width := left + cell*len(colLabels) + 10
	height := top + cell*len(rowLabels) + 10

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", left, svgEscape(title))
	}
	for j, l := range colLabels {
		x := left + j*cell + cell/2
		fmt.Fprintf(&b, `<text x="%d" y="%d" transform="rotate(-45 %d %d)">%s</text>`+"\n",
			x, top-8, x, top-8, svgEscape(l))
	}
	for i, rl := range rowLabels {
		y := top + i*cell
		fmt.Fprintf(&b, `<text x="4" y="%d">%s</text>`+"\n", y+cell/2+4, svgEscape(rl))
		for j := range colLabels {
			v := values[i][j]
			x := left + j*cell
			fill := "#dddddd"
			label := ""
			if v >= 0 {
				fill = heatColor(v)
				label = strings.TrimSpace(Cell(v))
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#fff"/>`+"\n",
				x, y, cell, cell, fill)
			if label != "" {
				fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
					x+cell/2, y+cell/2+4, svgEscape(label))
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// heatColor maps a makespan ratio to a white→red gradient capped at 5,
// mirroring the paper's colormap.
func heatColor(ratio float64) string {
	t := (ratio - 1) / 4 // 1 → 0, 5+ → 1
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	gb := int(math.Round(255 * (1 - t)))
	return fmt.Sprintf("#ff%02x%02x", gb, gb)
}
