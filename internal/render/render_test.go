package render

import (
	"math"
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
)

func TestGanttContainsTaskNames(t *testing.T) {
	inst := datasets.Fig1Instance()
	s, err := scheduler.New("HEFT")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(inst, sch, 60)
	for _, name := range []string{"t1", "t2", "t3", "t4"} {
		if !strings.Contains(out, name) {
			t.Errorf("gantt missing task %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "makespan = 4.2500") {
		t.Errorf("gantt missing makespan header:\n%s", out)
	}
	// One row per node plus the header.
	if got := strings.Count(out, "\n"); got != inst.Net.NumNodes()+1 {
		t.Errorf("gantt has %d lines, want %d", got, inst.Net.NumNodes()+1)
	}
}

func TestGanttTinyWidthClamped(t *testing.T) {
	inst := datasets.Fig1Instance()
	s, _ := scheduler.New("HEFT")
	sch, _ := s.Schedule(inst)
	out := Gantt(inst, sch, 1) // must clamp, not panic
	if len(out) == 0 {
		t.Fatal("empty gantt")
	}
}

func TestCellFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.0, " 1.00"},
		{4.34, " 4.34"},
		{5.01, "> 5.0"},
		{1234, ">1000"},
		{math.Inf(1), ">1000"},
	}
	for _, c := range cases {
		if got := Cell(c.in); got != c.want {
			t.Errorf("Cell(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestGridRendersLabelsAndBlanks(t *testing.T) {
	out := Grid("title", []string{"rowA", "b"}, []string{"c1", "column2"},
		[][]float64{{1.5, -1}, {6.2, 1}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "rowA") || !strings.Contains(out, "column2") {
		t.Fatalf("grid missing labels:\n%s", out)
	}
	if !strings.Contains(out, "> 5.0") {
		t.Fatalf("grid missing capped cell:\n%s", out)
	}
	if strings.Contains(out, "-1") {
		t.Fatalf("grid rendered the blank sentinel:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"r1"}, []string{"a", "b"}, [][]float64{{1.2345, -1}})
	want := "row,a,b\nr1,1.2345,\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("lbl", []float64{1, 2, 2, 3, 10}, 3)
	if !strings.Contains(out, "lbl") || !strings.Contains(out, "n=5") {
		t.Fatalf("histogram header wrong:\n%s", out)
	}
	if !strings.Contains(out, "median=2.000") {
		t.Fatalf("histogram median wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 { // header + 3 bins
		t.Fatalf("histogram bin count wrong:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if out := Histogram("x", nil, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty histogram = %q", out)
	}
}

func TestHistogramConstantValues(t *testing.T) {
	out := Histogram("const", []float64{4, 4, 4}, 4)
	if !strings.Contains(out, "n=3") {
		t.Fatalf("constant histogram:\n%s", out)
	}
}
