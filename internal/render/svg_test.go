package render

import (
	"strconv"
	"strings"
	"testing"

	"saga/internal/datasets"
	"saga/internal/scheduler"
)

func TestGanttSVGWellFormed(t *testing.T) {
	inst := datasets.Fig1Instance()
	s, err := scheduler.New("HEFT")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := GanttSVG(inst, sch, SVGOptions{Title: "Fig 1 <HEFT>"})
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("not an SVG document:\n%.80s...", out)
	}
	// One rect per task (plus lanes and background).
	if got := strings.Count(out, "<title>"); got != inst.Graph.NumTasks() {
		t.Fatalf("task rect count = %d, want %d", got, inst.Graph.NumTasks())
	}
	// Title must be escaped.
	if strings.Contains(out, "<HEFT>") {
		t.Fatal("unescaped title in SVG")
	}
	if !strings.Contains(out, "&lt;HEFT&gt;") {
		t.Fatal("escaped title missing")
	}
	// One lane per node.
	if got := strings.Count(out, ">node "); got != inst.Net.NumNodes() {
		t.Fatalf("lane labels = %d, want %d", got, inst.Net.NumNodes())
	}
	// Balanced tags.
	if strings.Count(out, "<rect") == 0 || strings.Count(out, "<text") == 0 {
		t.Fatal("missing chart elements")
	}
}

func TestGanttSVGZeroMakespan(t *testing.T) {
	inst := datasets.Fig1Instance()
	s, _ := scheduler.New("HEFT")
	sch, _ := s.Schedule(inst)
	for i := range sch.ByTask {
		sch.ByTask[i].Start, sch.ByTask[i].End = 0, 0
	}
	out := GanttSVG(inst, sch, SVGOptions{}) // must not divide by zero
	if !strings.Contains(out, "<svg") {
		t.Fatal("zero-makespan SVG broken")
	}
}

func TestHeatmapSVG(t *testing.T) {
	out := HeatmapSVG("grid & caption", []string{"r1", "r2"}, []string{"c1", "c2"},
		[][]float64{{-1, 2.5}, {7.0, 1.0}})
	if !strings.HasPrefix(out, "<svg ") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(out, "grid &amp; caption") {
		t.Fatal("title not escaped")
	}
	// The blank diagonal cell renders gray, the capped cell saturates.
	if !strings.Contains(out, "#dddddd") {
		t.Fatal("blank cell color missing")
	}
	if !strings.Contains(out, "#ff0000") {
		t.Fatal("saturated cell color missing")
	}
	// Ratio 1 renders white-ish.
	if !strings.Contains(out, "#ffffff") {
		t.Fatal("ratio-1 cell not white")
	}
	if !strings.Contains(out, "&gt; 5.0") && !strings.Contains(out, "> 5.0") {
		t.Fatal("capped label missing")
	}
}

func TestHeatColorMonotone(t *testing.T) {
	// Redness (lower green/blue channels) must not decrease with ratio.
	prev := int64(256)
	for _, r := range []float64{1, 1.5, 2, 3, 4, 5, 10, 1e6} {
		c := heatColor(r)
		g, err := strconv.ParseInt(c[3:5], 16, 32)
		if err != nil {
			t.Fatalf("bad color %q: %v", c, err)
		}
		if g > prev {
			t.Fatalf("heat color not monotone at ratio %v: %s", r, c)
		}
		prev = g
	}
	if heatColor(1) != "#ffffff" || heatColor(5) != "#ff0000" {
		t.Fatalf("endpoint colors: %s, %s", heatColor(1), heatColor(5))
	}
}
