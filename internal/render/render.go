// Package render draws ASCII Gantt charts of schedules (the paper's Fig
// 1c, 3d-g, 5b/d, 6b/d) and the heatmap-style grids of Figs 2, 4 and
// 10-19. It substitutes plain-text rendering for the paper's matplotlib
// figures; the numbers are identical (DESIGN.md, substitution 5).
//
// Rendering is a pure function of its inputs — identical results
// produce byte-identical text and SVG — which is what lets the
// determinism suites diff whole figures.
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"saga/internal/graph"
	"saga/internal/schedule"
)

// Gantt renders the schedule as an ASCII chart, one row per node, width
// columns wide. Task names are drawn inside their execution intervals;
// intervals too narrow for a name show '#'.
func Gantt(inst *graph.Instance, s *schedule.Schedule, width int) string {
	if width < 20 {
		width = 20
	}
	makespan := s.Makespan()
	if makespan == 0 {
		makespan = 1
	}
	scale := float64(width) / makespan

	perNode := make([][]schedule.Assignment, s.NumNodes)
	for _, a := range s.Assignments() {
		perNode[a.Node] = append(perNode[a.Node], a)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "makespan = %.4f\n", s.Makespan())
	for v := 0; v < s.NumNodes; v++ {
		row := []byte(strings.Repeat(".", width))
		for _, a := range perNode[v] {
			lo := int(math.Round(a.Start * scale))
			hi := int(math.Round(a.End * scale))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			name := inst.Graph.Tasks[a.Task].Name
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
			if hi-lo >= len(name)+2 {
				copy(row[lo+1:], name)
			}
		}
		fmt.Fprintf(&b, "node %2d |%s|\n", v, row)
	}
	return b.String()
}

// Cell formats a makespan ratio the way the paper's heatmaps do: ">1000"
// for enormous ratios, "> 5.0" for ratios above the color scale, and a
// two-decimal value otherwise.
func Cell(ratio float64) string {
	switch {
	case math.IsInf(ratio, 1) || ratio > 1000:
		return ">1000"
	case ratio > 5:
		return "> 5.0"
	default:
		return fmt.Sprintf("%5.2f", ratio)
	}
}

// Grid renders a labelled matrix of makespan ratios: one row per rowLabel
// and one column per colLabel. Negative values render as blanks (used
// for the paper's empty diagonal cells).
func Grid(title string, rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	rowWidth := 0
	for _, l := range rowLabels {
		if len(l) > rowWidth {
			rowWidth = len(l)
		}
	}
	colWidth := 5
	for _, l := range colLabels {
		if len(l) > colWidth {
			colWidth = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s", rowWidth, "")
	for _, l := range colLabels {
		fmt.Fprintf(&b, "  %*s", colWidth, l)
	}
	b.WriteByte('\n')
	for i, rl := range rowLabels {
		fmt.Fprintf(&b, "%*s", rowWidth, rl)
		for j := range colLabels {
			v := values[i][j]
			if v < 0 {
				fmt.Fprintf(&b, "  %*s", colWidth, "")
				continue
			}
			fmt.Fprintf(&b, "  %*s", colWidth, Cell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the same matrix as comma-separated rows (machine-readable
// companion to Grid). Negative values render as empty cells.
func CSV(rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	b.WriteString("row")
	for _, l := range colLabels {
		b.WriteByte(',')
		b.WriteString(l)
	}
	b.WriteByte('\n')
	for i, rl := range rowLabels {
		b.WriteString(rl)
		for j := range colLabels {
			b.WriteByte(',')
			if values[i][j] >= 0 {
				fmt.Fprintf(&b, "%.4f", values[i][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram renders a vertical-bar text histogram of the values with the
// given number of bins — the stand-in for the paper's Fig 7b/8b box
// plots. It also prints min/median/max.
func Histogram(label string, values []float64, bins int) string {
	if len(values) == 0 {
		return label + ": (no data)\n"
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if bins < 1 {
		bins = 10
	}
	counts := make([]int, bins)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for _, v := range sorted {
		i := int(float64(bins) * (v - lo) / span)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	med := sorted[len(sorted)/2]
	fmt.Fprintf(&b, "%s: n=%d min=%.3f median=%.3f max=%.3f\n", label, len(sorted), lo, med, hi)
	for i, c := range counts {
		binLo := lo + span*float64(i)/float64(bins)
		binHi := lo + span*float64(i+1)/float64(bins)
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("*", int(math.Round(40*float64(c)/float64(maxCount))))
		}
		fmt.Fprintf(&b, "  [%8.2f, %8.2f) %5d %s\n", binLo, binHi, c, bar)
	}
	return b.String()
}
