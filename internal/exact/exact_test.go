package exact

import (
	"math"
	"testing"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
)

func smallInstance(seed uint64) *graph.Instance {
	return datasets.InitialPISAInstance(rng.New(seed))
}

func TestSolveProducesValidSchedule(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := smallInstance(seed)
		sch, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSolveAtLeastLowerBound(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		inst := smallInstance(seed)
		sch, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBound(inst); sch.Makespan() < lb-graph.Eps {
			t.Fatalf("seed %d: optimal %v below lower bound %v", seed, sch.Makespan(), lb)
		}
	}
}

func TestSolveMatchesHandOptimum(t *testing.T) {
	// Two independent unit tasks on two unit nodes: optimal makespan 1.
	g := graph.NewTaskGraph()
	g.AddTask("a", 1)
	g.AddTask("b", 1)
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	sch, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), 1) {
		t.Fatalf("makespan = %v, want 1", sch.Makespan())
	}
}

func TestSolveChainWithExpensiveComm(t *testing.T) {
	// Chain a→b with data 100 over a weak link: optimal keeps both on
	// the fast node: 1/2 + 2/2 = 1.5.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 2)
	g.MustAddDep(a, b, 100)
	net := graph.NewNetwork(2)
	net.Speeds[1] = 2
	net.SetLink(0, 1, 0.1)
	inst := graph.NewInstance(g, net)
	sch, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), 1.5) {
		t.Fatalf("makespan = %v, want 1.5", sch.Makespan())
	}
	if sch.ByTask[0].Node != 1 || sch.ByTask[1].Node != 1 {
		t.Fatalf("optimal split tasks across nodes: %+v", sch.ByTask)
	}
}

func TestFeasibleConsistentWithSolve(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		inst := smallInstance(seed)
		opt, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := opt.Makespan()
		if _, ok, err := Feasible(inst, m+graph.Eps, Options{}); err != nil || !ok {
			t.Fatalf("seed %d: deadline == optimum reported infeasible (%v)", seed, err)
		}
		if _, ok, err := Feasible(inst, m*0.95, Options{}); err != nil || ok {
			t.Fatalf("seed %d: deadline below optimum reported feasible (%v)", seed, err)
		}
	}
}

func TestFeasibleReturnsSatisfyingSchedule(t *testing.T) {
	inst := smallInstance(3)
	opt, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := opt.Makespan() * 1.5
	sch, ok, err := Feasible(inst, deadline, Options{})
	if err != nil || !ok {
		t.Fatalf("feasible failed: %v", err)
	}
	if err := schedule.Validate(inst, sch); err != nil {
		t.Fatal(err)
	}
	if sch.Makespan() > deadline+graph.Eps {
		t.Fatalf("returned schedule misses deadline: %v > %v", sch.Makespan(), deadline)
	}
}

// TestSolveDeepChain10000 pins the iterative search's memory and stack
// behavior: a 10k-task dependency chain on one node has exactly one
// candidate per level, so the DFS runs 10k frames deep on the single
// shared builder. The recursive clone-per-branch implementation this
// replaced held a builder copy per level and could not finish; the
// iterative one completes with the exact chain makespan.
func TestSolveDeepChain10000(t *testing.T) {
	const n = 10000
	g := graph.NewTaskGraph()
	want := 0.0
	for i := 0; i < n; i++ {
		c := 1 + float64(i%5)
		g.AddTask("", c)
		want += c
	}
	for i := 1; i < n; i++ {
		g.MustAddDep(i-1, i, float64(i%3))
	}
	inst := graph.NewInstance(g, graph.NewNetwork(1))
	sch, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(inst, sch); err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), want) {
		t.Fatalf("chain makespan = %v, want %v", sch.Makespan(), want)
	}
}

// TestSolveDominancePrunes checks the solver stays exact on an instance
// built to hit the dominance table hard: many identical independent
// tasks over identical nodes, where permuted placements collapse onto
// the same (mask, assignment) keys.
func TestSolveDominancePrunes(t *testing.T) {
	g := graph.NewTaskGraph()
	for i := 0; i < 6; i++ {
		g.AddTask("", 1)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	sch, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), 3) {
		t.Fatalf("makespan = %v, want 3 (6 unit tasks on 2 unit nodes)", sch.Makespan())
	}
}

func TestBudgetExceeded(t *testing.T) {
	inst := smallInstance(5)
	if _, err := Solve(inst, Options{MaxNodes: 2}); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestLowerBoundComponents(t *testing.T) {
	// Work bound dominates: 4 unit tasks, 2 unit nodes → LB 2.
	g := graph.NewTaskGraph()
	for i := 0; i < 4; i++ {
		g.AddTask("t", 1)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(2))
	if lb := LowerBound(inst); !graph.ApproxEq(lb, 2) {
		t.Fatalf("work lower bound = %v, want 2", lb)
	}
	// Critical-path bound dominates: chain of 3 unit tasks, 3 nodes.
	g2 := graph.NewTaskGraph()
	a := g2.AddTask("a", 1)
	b := g2.AddTask("b", 1)
	c := g2.AddTask("c", 1)
	g2.MustAddDep(a, b, 0)
	g2.MustAddDep(b, c, 0)
	inst2 := graph.NewInstance(g2, graph.NewNetwork(3))
	if lb := LowerBound(inst2); !graph.ApproxEq(lb, 3) {
		t.Fatalf("critical-path lower bound = %v, want 3", lb)
	}
}

func TestLowerBoundNeverExceedsOptimal(t *testing.T) {
	for seed := uint64(20); seed < 35; seed++ {
		inst := smallInstance(seed)
		opt, err := Solve(inst, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lb := LowerBound(inst); lb > opt.Makespan()+graph.Eps {
			t.Fatalf("seed %d: LB %v > OPT %v", seed, lb, opt.Makespan())
		}
	}
}

func TestSolveInfiniteLinksNetwork(t *testing.T) {
	// Shared-filesystem style network: communication is free, optimum
	// spreads tasks.
	g := graph.NewTaskGraph()
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddDep(a, b, 100)
	g.MustAddDep(a, c, 100)
	net := graph.NewNetwork(2)
	net.SetLink(0, 1, math.Inf(1))
	inst := graph.NewInstance(g, net)
	sch, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.ApproxEq(sch.Makespan(), 2) {
		t.Fatalf("makespan = %v, want 2 (free communication)", sch.Makespan())
	}
}
