// Package exact provides an exact branch-and-bound makespan solver. It
// backs two Table I schedulers: BruteForce (exhaustive optimum) and SMT,
// which in the paper drives an external SMT solver with binary search to
// find a (1+ε)-optimal schedule. Offline and stdlib-only, this package
// substitutes a pure-Go exact feasibility search for the SMT solver; the
// interface (binary search over a makespan deadline, exponential worst
// case, tiny-instance applicability) is identical. See DESIGN.md,
// substitution 1.
//
// The search branches over (ready task, node) placements, scheduling each
// placed task at its earliest feasible start. Every combination of
// assignment and per-node execution order is reachable this way, and for
// a fixed assignment and order, starting every task as early as possible
// is optimal — so the search space contains an optimal schedule.
package exact

import (
	"errors"
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// ErrBudget is returned when the search exceeds its node budget before
// proving optimality (or feasibility).
var ErrBudget = errors.New("exact: search budget exceeded")

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of explored search nodes. Zero means the
	// default of 5 million.
	MaxNodes int64
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes <= 0 {
		return 5_000_000
	}
	return o.MaxNodes
}

// LowerBound returns a makespan lower bound for the instance: the larger
// of the communication-free critical path under best-case speeds and the
// total-work bound (sum of costs over summed speeds).
func LowerBound(inst *graph.Instance) float64 {
	g, net := inst.Graph, inst.Net
	maxSpeed := 0.0
	sumSpeed := 0.0
	for _, s := range net.Speeds {
		if s > maxSpeed {
			maxSpeed = s
		}
		sumSpeed += s
	}
	// Critical path with every task at its fastest and no communication.
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, g.NumTasks())
	cp := 0.0
	for _, t := range order {
		ready := 0.0
		for _, d := range g.Pred[t] {
			if finish[d.To] > ready {
				ready = finish[d.To]
			}
		}
		finish[t] = ready + g.Tasks[t].Cost/maxSpeed
		if finish[t] > cp {
			cp = finish[t]
		}
	}
	work := 0.0
	for _, t := range g.Tasks {
		work += t.Cost
	}
	return math.Max(cp, work/sumSpeed)
}

type searcher struct {
	inst     *graph.Instance
	deadline float64 // prune finishes beyond this; +Inf for pure optimization
	best     float64
	bestSch  *schedule.Schedule
	nodes    int64
	maxNodes int64
	// remaining[t] is a lower bound on time from t's start to the end of
	// the schedule: communication-free critical path from t at max speed.
	remaining []float64
}

func newSearcher(inst *graph.Instance, deadline float64, opts Options) *searcher {
	s := &searcher{
		inst:     inst,
		deadline: deadline,
		best:     math.Inf(1),
		maxNodes: opts.maxNodes(),
	}
	g := inst.Graph
	maxSpeed := 0.0
	for _, sp := range inst.Net.Speeds {
		if sp > maxSpeed {
			maxSpeed = sp
		}
	}
	s.remaining = make([]float64, g.NumTasks())
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		tail := 0.0
		for _, d := range g.Succ[t] {
			if s.remaining[d.To] > tail {
				tail = s.remaining[d.To]
			}
		}
		s.remaining[t] = g.Tasks[t].Cost/maxSpeed + tail
	}
	return s
}

// search explores placements depth-first. firstOnly stops at the first
// complete schedule meeting the deadline (feasibility mode).
func (s *searcher) search(b *schedule.Builder, rs *scheduler.ReadySet, firstOnly bool) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return ErrBudget
	}
	if rs.Empty() {
		m := b.Makespan()
		if m < s.best {
			s.best = m
			sch, err := b.Schedule()
			if err != nil {
				return err
			}
			s.bestSch = sch
		}
		return nil
	}
	ready := append([]int(nil), rs.Ready()...)
	for _, t := range ready {
		for v := 0; v < s.inst.Net.NumNodes(); v++ {
			start, finish, ok := b.EFT(t, v, false)
			if !ok {
				continue
			}
			// Bound: the branch's final makespan is at least the task's
			// own finish and at least start plus the communication-free
			// critical path from t at best speed. Prune branches that
			// cannot beat the incumbent or meet the deadline.
			lb := math.Max(start+s.remaining[t], finish)
			if lb >= s.best-graph.Eps || lb > s.deadline+graph.Eps {
				continue
			}
			b2 := cloneBuilder(b)
			b2.Place(t, v, start)
			rs.Complete(t)
			err := s.search(b2, rs, firstOnly)
			rs.Uncomplete(t)
			if err != nil {
				return err
			}
			if firstOnly && s.bestSch != nil && s.best <= s.deadline+graph.Eps {
				return nil
			}
		}
	}
	return nil
}

// cloneBuilder copies builder state for backtracking. Builders are small
// (a few tasks) for the instance sizes this package accepts, so copying
// beats undo bookkeeping.
func cloneBuilder(b *schedule.Builder) *schedule.Builder {
	return b.Clone()
}

// Solve returns a minimum-makespan schedule, searching exhaustively with
// branch-and-bound. It returns ErrBudget if the instance is too large for
// the node budget.
func Solve(inst *graph.Instance, opts Options) (*schedule.Schedule, error) {
	s := newSearcher(inst, math.Inf(1), opts)
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	if err := s.search(b, rs, false); err != nil {
		return nil, err
	}
	if s.bestSch == nil {
		return nil, errors.New("exact: no schedule found")
	}
	return s.bestSch, nil
}

// Feasible reports whether a schedule with makespan <= deadline exists,
// returning one if so.
func Feasible(inst *graph.Instance, deadline float64, opts Options) (*schedule.Schedule, bool, error) {
	s := newSearcher(inst, deadline, opts)
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	if err := s.search(b, rs, true); err != nil {
		return nil, false, err
	}
	if s.bestSch != nil && s.best <= deadline+graph.Eps {
		return s.bestSch, true, nil
	}
	return nil, false, nil
}
