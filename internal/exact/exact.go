// Package exact provides an exact branch-and-bound makespan solver. It
// backs two Table I schedulers: BruteForce (exhaustive optimum) and SMT,
// which in the paper drives an external SMT solver with binary search to
// find a (1+ε)-optimal schedule. Offline and stdlib-only, this package
// substitutes a pure-Go exact feasibility search for the SMT solver; the
// interface (binary search over a makespan deadline, exponential worst
// case, tiny-instance applicability) is identical. See DESIGN.md,
// substitution 1.
//
// The search branches over (ready task, node) placements, scheduling each
// placed task at its earliest feasible start. Every combination of
// assignment and per-node execution order is reachable this way, and for
// a fixed assignment and order, starting every task as early as possible
// is optimal — so the search space contains an optimal schedule.
//
// Three devices keep the search usable beyond toy sizes:
//
//   - HEFT warm start: an inline HEFT pass (upward ranks over the shared
//     cost tables, earliest-finish placement with insertion) seeds the
//     incumbent before the first branch, so the lower-bound prune cuts
//     against a realistic makespan from node one instead of +Inf.
//     Feasibility queries whose deadline the warm schedule already meets
//     return without searching at all.
//   - Dominance pruning: two partial schedules that placed the same task
//     set on the same nodes differ only in their per-task finish times;
//     if a previously seen state finishes every task no later than the
//     current one, the current branch cannot beat what the earlier
//     branch already explored and is cut. Sound because the remaining
//     search depends on the past only through task end times and node
//     availability, both monotone in the compared vector. Applied to
//     instances of at most 64 tasks (the placement set packs into one
//     word) with a bounded table.
//   - Iterative deepening-free DFS on one shared Builder: frames hold a
//     ready-list snapshot and a candidate cursor, and backtracking undoes
//     placements via Builder.Unplace in LIFO order. No per-branch clone,
//     so a 10k-deep dependency chain costs O(|T|) memory, not O(|T|²)
//     (chain-depth regression in exact_test.go).
package exact

import (
	"errors"
	"math"

	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// ErrBudget is returned when the search exceeds its node budget before
// proving optimality (or feasibility).
var ErrBudget = errors.New("exact: search budget exceeded")

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of candidate (task, node) placements the
	// search evaluates — every EFT evaluation counts, whether or not the
	// branch survives the bound checks, so the budget measures work done
	// rather than branches taken and trips even when warm-start pruning
	// closes the tree early. Zero means the default of 5 million.
	MaxNodes int64
}

func (o Options) maxNodes() int64 {
	if o.MaxNodes <= 0 {
		return 5_000_000
	}
	return o.MaxNodes
}

// maxDomEntries bounds the dominance table; past this the search keeps
// pruning against recorded states but stops recording new ones.
const maxDomEntries = 1 << 20

// LowerBound returns a makespan lower bound for the instance: the larger
// of the communication-free critical path under best-case speeds and the
// total-work bound (sum of costs over summed speeds).
func LowerBound(inst *graph.Instance) float64 {
	g, net := inst.Graph, inst.Net
	maxSpeed := 0.0
	sumSpeed := 0.0
	for _, s := range net.Speeds {
		if s > maxSpeed {
			maxSpeed = s
		}
		sumSpeed += s
	}
	// Critical path with every task at its fastest and no communication.
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	finish := make([]float64, g.NumTasks())
	cp := 0.0
	for _, t := range order {
		ready := 0.0
		for _, d := range g.Pred[t] {
			if finish[d.To] > ready {
				ready = finish[d.To]
			}
		}
		finish[t] = ready + g.Tasks[t].Cost/maxSpeed
		if finish[t] > cp {
			cp = finish[t]
		}
	}
	work := 0.0
	for _, t := range g.Tasks {
		work += t.Cost
	}
	return math.Max(cp, work/sumSpeed)
}

type domKey struct {
	mask   uint64 // placed-task set, bit t set iff t placed
	assign string // node index per placed task, ascending task order
}

type searcher struct {
	inst     *graph.Instance
	deadline float64 // prune finishes beyond this; +Inf for pure optimization
	best     float64
	bestSch  schedule.Schedule
	haveBest bool
	nodes    int64
	maxNodes int64
	// remaining[t] is a lower bound on time from t's start to the end of
	// the schedule: communication-free critical path from t at max speed.
	remaining []float64

	// Iterative DFS state: one shared builder and ready set, a frame
	// stack, and an arena holding every live frame's ready snapshot.
	stack    []frame
	readyBuf []int

	// Dominance table (nil when the instance has more than 64 tasks).
	dom     map[domKey][]float64
	keyBuf  []byte
	endsBuf []float64
}

// frame is one node of the DFS tree: the ready frontier it branches
// over (a slice of the shared arena), a cursor over its (task, node)
// candidates, and the placement that created it (undone when the frame
// pops; -1 for the root).
type frame struct {
	base, n    int // readyBuf[base : base+n] is this frame's frontier
	ci         int // next candidate: task readyBuf[base+ci/nV], node ci%nV
	placedTask int
}

func newSearcher(inst *graph.Instance, deadline float64, opts Options) *searcher {
	s := &searcher{
		inst:     inst,
		deadline: deadline,
		best:     math.Inf(1),
		maxNodes: opts.maxNodes(),
	}
	g := inst.Graph
	maxSpeed := 0.0
	for _, sp := range inst.Net.Speeds {
		if sp > maxSpeed {
			maxSpeed = sp
		}
	}
	s.remaining = make([]float64, g.NumTasks())
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		tail := 0.0
		for _, d := range g.Succ[t] {
			if s.remaining[d.To] > tail {
				tail = s.remaining[d.To]
			}
		}
		s.remaining[t] = g.Tasks[t].Cost/maxSpeed + tail
	}
	if n := g.NumTasks(); n <= 64 {
		s.dom = make(map[domKey][]float64)
		s.keyBuf = make([]byte, 0, n)
		s.endsBuf = make([]float64, 0, n)
	}
	return s
}

// record captures the builder's complete schedule as the incumbent if
// it improves on the current best.
func (s *searcher) record(b *schedule.Builder) error {
	m := b.Makespan()
	if m >= s.best {
		return nil
	}
	if err := b.ScheduleInto(&s.bestSch); err != nil {
		return err
	}
	s.best = m
	s.haveBest = true
	return nil
}

// warmStart seeds the incumbent with an inline HEFT schedule: upward
// ranks from the shared cost tables (average execution plus average
// communication, the standard rank_u recursion evaluated iteratively in
// reverse topological order), tasks taken highest-rank-first from the
// ready frontier, each placed at its earliest finish with insertion.
// The schedulers package cannot be imported here (it depends on exact),
// so the pass is implemented against Builder directly. Skipped for
// cyclic graphs; the search proper reports those through b.ScheduleInto.
func (s *searcher) warmStart() error {
	g := s.inst.Graph
	if _, err := g.TopoOrder(); err != nil {
		return nil
	}
	var tab graph.Tables
	tab.Build(s.inst)
	tab.EnsureAvgComm()
	n := g.NumTasks()
	rank := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		t := tab.Topo[i]
		tail := 0.0
		for j, d := range g.Succ[t] {
			if r := tab.AvgCommSucc(t, j) + rank[d.To]; r > tail {
				tail = r
			}
		}
		rank[t] = tab.AvgExec[t] + tail
	}
	b := schedule.NewBuilder(s.inst)
	rs := scheduler.NewReadySet(g)
	for !rs.Empty() {
		// Highest upward rank among ready tasks; ties to the lower index
		// (the frontier is sorted ascending).
		ready := rs.Ready()
		pick := ready[0]
		for _, t := range ready[1:] {
			if rank[t] > rank[pick] {
				pick = t
			}
		}
		v, start := b.BestEFTNode(pick, true)
		b.Place(pick, v, start)
		rs.Complete(pick)
	}
	return s.record(b)
}

// dominatedOrRecord reports whether the builder's current partial state
// is dominated by an already-seen state with the same placement set and
// assignment (prune), recording the state otherwise. The compared value
// is the vector of placed-task end times in ascending task order: a
// stored vector componentwise <= the current one can reach every
// completion the current state can, at no later times.
func (s *searcher) dominatedOrRecord(b *schedule.Builder) bool {
	if s.dom == nil {
		return false
	}
	n := s.inst.Graph.NumTasks()
	mask := uint64(0)
	s.keyBuf = s.keyBuf[:0]
	s.endsBuf = s.endsBuf[:0]
	for t := 0; t < n; t++ {
		if !b.Placed(t) {
			continue
		}
		a := b.Assignment(t)
		mask |= 1 << uint(t)
		s.keyBuf = append(s.keyBuf, byte(a.Node))
		s.endsBuf = append(s.endsBuf, a.End)
	}
	key := domKey{mask: mask, assign: string(s.keyBuf)}
	if stored, ok := s.dom[key]; ok {
		le := true
		for i, e := range stored {
			if e > s.endsBuf[i] {
				le = false
				break
			}
		}
		if le {
			return true
		}
		ge := true
		for i, e := range stored {
			if e < s.endsBuf[i] {
				ge = false
				break
			}
		}
		if ge {
			copy(stored, s.endsBuf)
		}
		return false
	}
	if len(s.dom) < maxDomEntries {
		s.dom[key] = append([]float64(nil), s.endsBuf...)
	}
	return false
}

// push opens a DFS frame over the current ready frontier.
func (s *searcher) push(rs *scheduler.ReadySet, placedTask int) {
	base := len(s.readyBuf)
	s.readyBuf = append(s.readyBuf, rs.Ready()...)
	s.stack = append(s.stack, frame{base: base, n: len(s.readyBuf) - base, placedTask: placedTask})
}

// search explores placements depth-first over one shared builder,
// undoing each placement on backtrack. firstOnly stops at the first
// complete schedule meeting the deadline (feasibility mode).
func (s *searcher) search(b *schedule.Builder, rs *scheduler.ReadySet, firstOnly bool) error {
	nV := s.inst.Net.NumNodes()
	nT := s.inst.Graph.NumTasks()
	s.push(rs, -1)
	for len(s.stack) > 0 {
		f := &s.stack[len(s.stack)-1]
		if f.n == 0 && f.ci == 0 {
			// Empty frontier: a complete schedule (or a stuck cyclic
			// instance, which record surfaces as an error).
			f.ci = 1 // handle the leaf exactly once
			if b.NumPlaced() == nT || b.Makespan() < s.best {
				if err := s.record(b); err != nil {
					return err
				}
			}
		}
		descended := false
		for f.ci < f.n*nV {
			t := s.readyBuf[f.base+f.ci/nV]
			v := f.ci % nV
			f.ci++
			s.nodes++
			if s.nodes > s.maxNodes {
				return ErrBudget
			}
			start, finish, ok := b.EFT(t, v, false)
			if !ok {
				continue
			}
			// Bound: the branch's final makespan is at least the task's
			// own finish and at least start plus the communication-free
			// critical path from t at best speed. Prune branches that
			// cannot beat the incumbent or meet the deadline.
			lb := math.Max(start+s.remaining[t], finish)
			if lb >= s.best-graph.Eps || lb > s.deadline+graph.Eps {
				continue
			}
			b.Place(t, v, start)
			rs.Complete(t)
			if s.dominatedOrRecord(b) {
				rs.Uncomplete(t)
				b.Unplace(t)
				continue
			}
			s.push(rs, t)
			descended = true
			break
		}
		if descended {
			continue
		}
		// Frame exhausted: undo its placement and pop.
		if f.placedTask >= 0 {
			rs.Uncomplete(f.placedTask)
			b.Unplace(f.placedTask)
		}
		s.readyBuf = s.readyBuf[:f.base]
		s.stack = s.stack[:len(s.stack)-1]
		if firstOnly && s.haveBest && s.best <= s.deadline+graph.Eps {
			return nil
		}
	}
	return nil
}

// Solve returns a minimum-makespan schedule, searching exhaustively with
// branch-and-bound from an HEFT warm-start incumbent. It returns
// ErrBudget if the instance is too large for the node budget.
func Solve(inst *graph.Instance, opts Options) (*schedule.Schedule, error) {
	s := newSearcher(inst, math.Inf(1), opts)
	if err := s.warmStart(); err != nil {
		return nil, err
	}
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	if err := s.search(b, rs, false); err != nil {
		return nil, err
	}
	if !s.haveBest {
		return nil, errors.New("exact: no schedule found")
	}
	return &s.bestSch, nil
}

// Feasible reports whether a schedule with makespan <= deadline exists,
// returning one if so. A warm-start schedule already meeting the
// deadline short-circuits the search entirely.
func Feasible(inst *graph.Instance, deadline float64, opts Options) (*schedule.Schedule, bool, error) {
	s := newSearcher(inst, deadline, opts)
	if err := s.warmStart(); err != nil {
		return nil, false, err
	}
	if s.haveBest && s.best <= deadline+graph.Eps {
		return &s.bestSch, true, nil
	}
	b := schedule.NewBuilder(inst)
	rs := scheduler.NewReadySet(inst.Graph)
	if err := s.search(b, rs, true); err != nil {
		return nil, false, err
	}
	if s.haveBest && s.best <= deadline+graph.Eps {
		return &s.bestSch, true, nil
	}
	return nil, false, nil
}
