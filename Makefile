# Build/verify targets for the SAGA/PISA reproduction. `make verify` is
# the tier-1 gate; `make bench-smoke` is the allocation-regression gate
# for the scheduling hot path (see EXPERIMENTS.md, "Hot-path memory
# discipline", and the committed pre/post record in BENCH_hotpath.json);
# `make docs-lint` keeps every internal package documented.

GO ?= go

.PHONY: all build test test-race verify bench-smoke bench bench-pisa bench-pisa-full bench-scale bench-scale-full docs-lint coord-smoke serve-smoke chaos-smoke bench-serve fuzz-short cover

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race runs the race detector over every package that spawns
# goroutines: the worker pool, the parallel PISA/GA chains, the shared
# scheduler scratch/cache machinery they reuse, the sweep drivers that
# compose them, and the coordinator/worker protocol (heartbeat
# goroutines, concurrent leases, the in-memory collector). The parallel
# paths are deterministic by construction (pre-split RNG streams,
# per-chain scratches, canonical merge), and this is the gate that keeps
# the construction honest.
test-race:
	$(GO) test -race ./internal/runner ./internal/core ./internal/scheduler ./internal/experiments ./internal/coord/... ./internal/serve ./internal/httpx

# verify is the tier-1 check: everything builds, every test passes
# (including under the race detector for the concurrent packages), the
# hot path still schedules without allocating, the PISA inner loop stays
# incremental (bit-identical and allocation-free), the process-level
# coordinator smoke test survives a worker SIGKILL byte-identically, the
# scheduling daemon answers byte-identically to the library and drains
# gracefully (serve-smoke + bench-serve), the distributed-dispatch chaos
# drill survives a hub restart and worker SIGKILL mid-request
# (chaos-smoke), the wfformat ingestion path survives a bounded fuzz
# run, the scale-tier data plane keeps its throughput, memory, and
# bit-identity floors (bench-scale), per-package coverage stays above
# the COVER_BASELINE floors, and every package stays documented.
verify: build test test-race docs-lint bench-smoke bench-pisa bench-scale coord-smoke serve-smoke chaos-smoke bench-serve fuzz-short cover

# coord-smoke is the process-level fault drill for the sweep
# coordinator: it builds the saga binary, starts `saga coordinate` plus
# three `saga worker -coordinator` processes on a real Fig 4 sweep,
# SIGKILLs one worker mid-lease, and asserts the finished checkpoint
# store is byte-identical to the sequential single-process reference.
# The in-process fault-injection suites in internal/coord run on every
# plain `make test`; this target exercises the same invariant across
# real process and socket boundaries.
coord-smoke:
	COORD_SMOKE=1 $(GO) test -run TestCoordSmokeE2E -count 1 -v -timeout 300s ./internal/coord/

# serve-smoke is the process-level drill for the scheduling daemon: it
# builds the saga binary, boots a real `saga serve`, fires concurrent
# schedule/portfolio/robustness requests (plus one malformed, refused
# without collateral), asserts every response byte-identical to direct
# in-process library calls, then SIGTERMs the daemon mid-request and
# checks the graceful drain: the in-flight request completes, new
# connections are refused, the process exits 0.
serve-smoke:
	SERVE_SMOKE=1 $(GO) test -run TestServeSmokeE2E -count 1 -v -timeout 300s ./internal/serve/

# chaos-smoke is the process-level drill for the distributed dispatch
# path: a real `saga serve -coordinator` daemon farming concurrent
# portfolio/robustness requests through a real `saga coordinate -hub`
# to three `saga worker -persist` processes, with bearer tokens on
# every coordinator hop. Mid-request the hub is SIGKILLed and restarted
# on the same port (state gone — the daemon must re-register by content
# hash) and one worker is SIGKILLed mid-sweep (its leases expire and
# survivors reclaim the cells). Every response must be byte-identical
# to in-process local execution with zero degradations, and SIGTERM
# must drain daemon, workers, and hub to clean exit 0.
chaos-smoke:
	CHAOS_SMOKE=1 $(GO) test -run TestChaosSmokeE2E -count 1 -v -timeout 600s ./internal/serve/

# bench-serve is the daemon load gate: 8 concurrent clients against a
# live server, every response byte-verified, client-observed p50/p99
# reported and sanity-bounded. The committed measurement lives in
# BENCH_serve.json; re-measure with SERVE_BENCH_OUT=BENCH_serve.json
# prepended (see EXPERIMENTS.md).
bench-serve:
	SERVE_BENCH_GATE=1 $(GO) test -run TestServeLoadGate -count 1 -v -timeout 300s ./internal/serve/

# fuzz-short runs the wfformat ingestion fuzzer (Parse → ToTaskGraph →
# ToNetwork → Validate → Marshal round trip must never panic) for a
# bounded slice of CI time, seeded from the committed fixtures in
# internal/wfc/testdata/.
fuzz-short:
	$(GO) test -fuzz FuzzParse -fuzztime 10s -run '^$$' ./internal/wfc/

# cover enforces the per-package statement-coverage floors in
# COVER_BASELINE: `go test -cover` over the whole module, then every
# listed package must meet its floor. Keeps the serve/coord protocol
# surfaces from growing untested handlers.
cover:
	@$(GO) test -cover ./... > .cover.tmp; status=$$?; cat .cover.tmp; \
	if [ $$status -ne 0 ]; then rm -f .cover.tmp; exit $$status; fi; \
	awk 'NR==FNR { if ($$0 !~ /^#/ && NF==2) floor[$$1]=$$2; next } \
		($$2 in floor) && /coverage:/ { seen[$$2]=1; pct=$$0; sub(/.*coverage: /,"",pct); sub(/%.*/,"",pct); \
			if (pct+0 < floor[$$2]+0) { printf "cover: %s at %s%% — below the %s%% floor in COVER_BASELINE\n", $$2, pct, floor[$$2]; bad=1 } \
			else { printf "cover: %s at %s%% (floor %s%%)\n", $$2, pct, floor[$$2] } } \
		END { for (p in floor) if (!(p in seen)) { printf "cover: no coverage line for %s\n", p; bad=1 }; exit bad }' \
		COVER_BASELINE .cover.tmp; status=$$?; rm -f .cover.tmp; exit $$status

# docs-lint fails if any internal/* package lacks a package comment
# ("// Package <name> ..."). Every package must state its role and key
# invariant at the top — see ARCHITECTURE.md for the layer map.
docs-lint:
	@fail=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		grep -q "^// Package $$pkg " $$d*.go || { echo "docs-lint: internal/$$pkg has no package comment"; fail=1; }; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs-lint: all internal packages documented"

# bench-smoke runs the hot-path benchmark just long enough to surface an
# allocation regression loudly: the AllocsPerRun gate must stay at 0 for
# every list scheduler, and the -benchmem columns must read 0 allocs/op
# once warm. It finishes in a few seconds; use `make bench` for numbers
# worth recording in BENCH_hotpath.json.
bench-smoke:
	$(GO) test -run 'TestScheduleScratchZeroAlloc|TestScratchBitIdenticalToReference' -count 1 ./internal/schedulers/
	$(GO) test -run '^$$' -bench BenchmarkScheduleHotPath -benchmem -benchtime 100x .

# bench is the full measurement protocol behind BENCH_hotpath.json:
# count=3, 400ms per sub-benchmark; record the per-scheduler minimum.
bench:
	$(GO) test -run '^$$' -bench BenchmarkScheduleHotPath -benchmem -benchtime 400ms -count 3 .

# bench-pisa is the PISA inner-loop smoke gate: the bit-identity suites
# (incremental annealer == copy-and-rebuild reference, incremental GA ==
# clone-and-rebuild reference, parallel == sequential at every worker
# count), the apply→undo round-trip property, the cache-invalidation
# properties behind rank memoization (every mutating Tables op bumps
# Generation; stale cached ranks impossible), the 0 allocs/op gate for
# the steady-state accept/reject cycle, the enforced ≥1.3x
# iteration-speedup ratio check and the ≥1.5x parallel-run speedup check
# (TestPISAIterationMemoizationGate / TestPISAParallelSpeedupGate, opted
# in via PISA_BENCH_GATE=1; the parallel gate self-skips on single-core
# hosts where wall-clock scaling is physically impossible), and one
# -benchtime=1x pass over the benchmarks so they cannot rot. Part of
# `make verify`.
bench-pisa:
	$(GO) test -run 'TestRunBitIdenticalToReference|TestRunGABitIdenticalToReference|TestPerturbUndoRoundTrip|TestPISASteadyStateZeroAlloc|TestRunTracePreallocated' -count 1 ./internal/core/
	$(GO) test -run 'TestRunParallel|TestRunGAParallel' -count 1 ./internal/core/
	$(GO) test -run 'TestTablesGenerationBumps|TestTablesTopoIncrementalRepair|TestUpdateNodeSpeedPrefixResume' -count 1 ./internal/graph/
	$(GO) test -run 'TestEvalCache|TestTopoOrderMemo' -count 1 ./internal/scheduler/
	PISA_BENCH_GATE=1 $(GO) test -run 'TestPISAIterationMemoizationGate|TestPISAParallelSpeedupGate' -count 1 -v ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkPISAIteration|BenchmarkPISACandidateGen' -benchmem -benchtime 1x ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkPISARun' -benchmem -benchtime 1x .

# bench-pisa-full is the measurement protocol behind BENCH_pisa.json:
# count=3, 300ms per iteration/candidate-gen sub-benchmark and 1s for
# the end-to-end run; record the per-case minimum.
bench-pisa-full:
	$(GO) test -run '^$$' -bench 'BenchmarkPISAIteration|BenchmarkPISACandidateGen' -benchmem -benchtime 300ms -count 3 ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkPISARun' -benchmem -benchtime 1s -count 3 .

# bench-scale is the scale-tier regression gate behind BENCH_scale.json:
# the edge-sparse Tables property suites (byte-identical to the dense
# reference under random builds and incremental-update sequences, plus
# the 10k-deep chain traversal tests), then TestScaleBenchGate (opted in
# via SCALE_BENCH_GATE=1) enforcing HEFT throughput floors at the
# 1k/5k/10k tiers, the O(|V|+|E|+|D|·|V|) table-memory bound with
# edge-sparse link storage, and 10k-task bit-identity of the sparse
# tables against the dense reference. Part of `make verify`.
bench-scale:
	$(GO) test -run 'TestSparseTables|TestTablesChain10000' -count 1 ./internal/graph/
	$(GO) test -run 'TestSolveDeepChain10000' -count 1 ./internal/exact/
	SCALE_BENCH_GATE=1 $(GO) test -run TestScaleBenchGate -count 1 -v -timeout 300s .

# bench-scale-full is the measurement protocol behind BENCH_scale.json:
# count=3, 1s per tier; record the per-tier best and refresh the gate
# floors at measurement/4.
bench-scale-full:
	$(GO) test -run '^$$' -bench BenchmarkScaleHEFT -benchmem -benchtime 1s -count 3 .
