// Command figures regenerates every figure of the PISA paper as text
// output: Gantt charts for the worked examples (Figs 1, 3, 5, 6), the
// benchmarking grid (Fig 2), the pairwise PISA heatmap (Fig 4), the
// family studies (Figs 7, 8), the workflow structures (Fig 9), and the
// application-specific benchmarking+PISA grids (Figs 10-19).
//
// Usage:
//
//	figures [flags] <fig1|fig2|...|fig19|appspecific|all>
//
// Defaults are scaled down to finish in seconds; raise -n, -iters and
// -restarts to the paper's scale (-n 1000 -iters 1000 -restarts 5) for a
// full reproduction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/graph"
	"saga/internal/render"
	"saga/internal/rng"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
	"saga/internal/serialize"
)

// sweepDefaults supplies the flag defaults shared with cmd/saga
// worker/merge (experiments.DefaultSweepParams), so bare-flag runs of
// either CLI address the same sweep fingerprint.
var sweepDefaults = experiments.DefaultSweepParams()

var (
	flagN        = flag.Int("n", sweepDefaults.N, "instances per dataset / family samples")
	flagSeed     = flag.Uint64("seed", sweepDefaults.Seed, "root random seed")
	flagIters    = flag.Int("iters", sweepDefaults.Iters, "PISA iterations per restart (paper: 1000)")
	flagRestarts = flag.Int("restarts", sweepDefaults.Restarts, "PISA restarts per pair (paper: 5)")
	flagWorkflow = flag.String("workflow", sweepDefaults.Workflow, "workflow for the appspecific command")
	flagCCR      = flag.Float64("ccr", sweepDefaults.CCR, "single CCR for appspecific (0 = all five levels)")
	flagWorkers  = flag.Int("workers", 0, "parallel workers for the experiment sweeps (0 = GOMAXPROCS, 1 = sequential)")
	flagSVGDir   = flag.String("svgdir", "", "also write SVG renderings of grids and Gantt charts here")
	flagProgress = flag.Bool("progress", false, "report sweep progress on stderr")
	flagCkpt     = flag.String("checkpoint", "", "checkpoint file for fig4, fig7, fig8 and appspecific (resume an interrupted sweep, or render a store written by `saga merge` or `saga coordinate`; for appspecific pin one block with -ccr)")
	flagShard    = flag.String("shard", "", "run only shard I/C (e.g. 2/8) of a checkpointed sweep; cells stay in the -checkpoint store for `saga merge`")
	flagChainW   = flag.Int("chain-workers", 0, "parallel workers inside each annealing cell (0 or 1 = sequential; results and fingerprints identical at any count)")
)

// sweepParams mirrors the flag values into the sweep identity shared
// with `saga worker` and `saga merge` (internal/experiments.NewSweep):
// a worker shard and a local run of the same flags address one store.
func sweepParams(workflow string, ccr float64) experiments.SweepParams {
	return experiments.SweepParams{
		N:            *flagN,
		Iters:        *flagIters,
		Restarts:     *flagRestarts,
		Seed:         *flagSeed,
		Workflow:     workflow,
		CCR:          ccr,
		ChainWorkers: *flagChainW,
	}
}

// shardSpec parses -shard; the zero value runs the whole sweep. A shard
// without a store would compute cells and drop them, so -checkpoint is
// required.
func shardSpec() (runner.ShardSpec, error) {
	if *flagShard == "" {
		return runner.ShardSpec{}, nil
	}
	if *flagCkpt == "" {
		return runner.ShardSpec{}, fmt.Errorf("-shard requires -checkpoint: the store is the shard's output")
	}
	return runner.ParseShard(*flagShard)
}

// shardDone reports a finished shard instead of rendering: a sharded
// result is partial by construction, and its real output is the store.
// Touch guarantees the store file exists even for a shard owning zero
// cells, so the merge never misses an expected file.
func shardDone(label string, shard runner.ShardSpec, st *sweepStore) error {
	if err := st.ckpt.Touch(); err != nil {
		return err
	}
	fmt.Printf("%s: shard %s complete; cells stored in %s — combine with `saga merge -driver %s`, then re-run with `-checkpoint <merged>` (flags before the figure name) to render\n",
		label, shard, *flagCkpt, label)
	return nil
}

// sweepStore wraps the -checkpoint store and counts the cells this
// process contributed. Rendering from a store that already covered the
// whole sweep — a `saga merge` artifact, typically expensive to rebuild
// — must not consume it, so removeCheckpoint only deletes stores this
// run actually wrote into.
type sweepStore struct {
	ckpt   *serialize.Checkpoint
	stored atomic.Int64
}

func (s *sweepStore) Load() (map[int]json.RawMessage, error) { return s.ckpt.Load() }

func (s *sweepStore) Store(index int, cell json.RawMessage) error {
	s.stored.Add(1)
	return s.ckpt.Store(index, cell)
}

func (s *sweepStore) Flush() error { return s.ckpt.Flush() }

// checkpoint binds the -checkpoint store (nil when the flag is unset) to
// the given sweep fingerprint and wires it into ro. The fingerprint must
// cover every input that shapes cell indices and contents, so resuming a
// different sweep fails loudly instead of mixing stale cells in.
func checkpoint(ro *runner.Options, fingerprint string) *sweepStore {
	if *flagCkpt == "" {
		return nil
	}
	ckpt := serialize.NewCheckpoint(*flagCkpt)
	ckpt.SetFingerprint(fingerprint)
	st := &sweepStore{ckpt: ckpt}
	ro.Checkpoint = st
	return st
}

// removeCheckpoint deletes a completed sweep's store so it is not
// mistaken for a resumable one — unless this run computed nothing (the
// store was already complete, i.e. a merged artifact), in which case it
// is kept for further renders. A failed cleanup is only worth a warning
// — the computed result must still be rendered.
func removeCheckpoint(label string, st *sweepStore) {
	if st == nil {
		return
	}
	if st.stored.Load() == 0 {
		fmt.Fprintf(os.Stderr, "figures: %s: store %s already held every cell; keeping it\n", label, *flagCkpt)
		return
	}
	if err := st.ckpt.Remove(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %s: checkpoint cleanup: %v\n", label, err)
	}
}

// runnerOptions assembles the worker pool configuration shared by every
// parallel sweep: the -workers bound and, with -progress, the shared
// stderr reporter (completion, cells/sec throughput, wall-clock ETA).
func runnerOptions(label string) runner.Options {
	opts := runner.Options{Workers: *flagWorkers}
	if *flagProgress {
		opts.Progress = runner.ProgressPrinter(os.Stderr, label)
	}
	return opts
}

// writeSVG writes an SVG artifact when -svgdir is set.
func writeSVG(name, content string) error {
	if *flagSVGDir == "" {
		return nil
	}
	if err := os.MkdirAll(*flagSVGDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(*flagSVGDir, name), []byte(content), 0o644)
}

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: figures [flags] <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10...fig19|appspecific|all>")
		os.Exit(2)
	}
	for _, cmd := range flag.Args() {
		if err := run(cmd); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", cmd, err)
			os.Exit(1)
		}
	}
}

// appendixWorkflows maps figure ids to Section VII / Appendix A
// workflows.
var appendixWorkflows = map[string]string{
	"fig10": "srasearch",
	"fig11": "blast",
	"fig12": "blast",
	"fig13": "srasearch",
	"fig14": "bwa",
	"fig15": "epigenomics",
	"fig16": "genome",
	"fig17": "montage",
	"fig18": "seismology",
	"fig19": "soykb",
}

// shardable marks the sweeps that support -shard: exactly the
// checkpointable ones, since shards hand their cells over through the
// store.
var shardable = map[string]bool{"fig4": true, "fig7": true, "fig8": true, "appspecific": true}

func run(cmd string) error {
	if *flagShard != "" && !shardable[cmd] {
		if _, ok := appendixWorkflows[cmd]; !ok {
			return fmt.Errorf("-shard applies to checkpointable sweeps only (fig4, fig7, fig8, appspecific)")
		}
	}
	switch cmd {
	case "fig1":
		return fig1()
	case "fig2":
		return fig2()
	case "fig3":
		return fig3()
	case "fig4":
		return fig4()
	case "fig5", "fig6":
		return caseStudy(cmd)
	case "fig7":
		return family("fig7", "fig7 (fork-join family: HEFT loses to CPoP)", datasets.Fig7Instance)
	case "fig8":
		return family("fig8", "fig8 (wide-fork family: CPoP loses to HEFT)", datasets.Fig8Instance)
	case "fig9":
		return fig9()
	case "appspecific":
		return appSpecific(*flagWorkflow)
	case "all":
		for _, c := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			if err := run(c); err != nil {
				return err
			}
		}
		return nil
	}
	if wf, ok := appendixWorkflows[cmd]; ok {
		return appSpecific(wf)
	}
	return fmt.Errorf("unknown figure %q", cmd)
}

func mustSched(name string) scheduler.Scheduler {
	s, err := scheduler.New(name)
	if err != nil {
		panic(err)
	}
	return s
}

func fig1() error {
	inst := datasets.Fig1Instance()
	sch, err := mustSched("HEFT").Schedule(inst)
	if err != nil {
		return err
	}
	fmt.Println("== Fig 1: example problem instance and schedule (HEFT) ==")
	fmt.Print(render.Gantt(inst, sch, 60))
	fmt.Println()
	return writeSVG("fig1.svg", render.GanttSVG(inst, sch, render.SVGOptions{Title: "Fig 1: HEFT schedule"}))
}

func fig2() error {
	fmt.Println("== Fig 2: makespan ratios of 15 algorithms on 16 datasets ==")
	res, err := experiments.BenchmarkingRun(datasets.TableII, schedulers.Experimental(), *flagN, *flagSeed, runnerOptions("fig2"))
	if err != nil {
		return err
	}
	fmt.Print(render.Grid(
		fmt.Sprintf("max makespan ratio over %d instances/dataset (color-scale cap: > 5.0)", *flagN),
		res.Datasets, res.Schedulers, res.MaxGrid()))
	fmt.Println()
	return writeSVG("fig2.svg", render.HeatmapSVG("Fig 2: benchmarking",
		res.Datasets, res.Schedulers, res.MaxGrid()))
}

func fig3() error {
	fmt.Println("== Fig 3: HEFT vs CPoP on slightly modified networks ==")
	heft, cpop := mustSched("HEFT"), mustSched("CPoP")
	for _, mod := range []bool{false, true} {
		inst := datasets.Fig3Instance(mod)
		label := "original"
		if mod {
			label = "modified"
		}
		for _, s := range []scheduler.Scheduler{heft, cpop} {
			sch, err := s.Schedule(inst)
			if err != nil {
				return err
			}
			fmt.Printf("-- %s network, %s --\n%s", label, s.Name(), render.Gantt(inst, sch, 60))
		}
	}
	fmt.Println()
	return nil
}

func fig4() error {
	fmt.Println("== Fig 4: pairwise PISA heatmap (15 x 15) ==")
	sw, err := experiments.NewSweep("fig4", sweepParams("", 0))
	if err != nil {
		return err
	}
	opts := experiments.PairwiseOptions{Anneal: anneal()}
	ro := runnerOptions("fig4")
	if ro.Shard, err = shardSpec(); err != nil {
		return err
	}
	ckpt := checkpoint(&ro, sw.Fingerprint)
	res, err := experiments.PairwisePISARun(schedulers.Experimental(), opts, ro)
	if err != nil {
		return err
	}
	if ro.Shard.Enabled() {
		return shardDone("fig4", ro.Shard, ckpt)
	}
	removeCheckpoint("fig4", ckpt)
	rows := append([][]float64{res.Worst}, res.Ratios...)
	rowLabels := append([]string{"Worst"}, res.Schedulers...)
	fmt.Print(render.Grid(
		fmt.Sprintf("cell (row i, col j) = worst-case ratio of scheduler j vs base i (%d restarts x %d iters)",
			*flagRestarts, *flagIters),
		rowLabels, res.Schedulers, rows))
	fmt.Println()
	return writeSVG("fig4.svg", render.HeatmapSVG("Fig 4: pairwise PISA",
		rowLabels, res.Schedulers, rows))
}

func caseStudy(cmd string) error {
	var inst *graph.Instance
	if cmd == "fig5" {
		inst = datasets.Fig5Instance()
		fmt.Println("== Fig 5: instance where HEFT performs ~1.55x worse than CPoP ==")
	} else {
		inst = datasets.Fig6Instance()
		fmt.Println("== Fig 6: instance where CPoP performs ~2.83x worse than HEFT ==")
	}
	heft, cpop := mustSched("HEFT"), mustSched("CPoP")
	sh, err := heft.Schedule(inst)
	if err != nil {
		return err
	}
	sc, err := cpop.Schedule(inst)
	if err != nil {
		return err
	}
	fmt.Printf("-- HEFT --\n%s-- CPoP --\n%s", render.Gantt(inst, sh, 60), render.Gantt(inst, sc, 60))
	fmt.Printf("HEFT/CPoP = %.3f   CPoP/HEFT = %.3f\n\n",
		sh.Makespan()/sc.Makespan(), sc.Makespan()/sh.Makespan())
	return nil
}

func family(label, title string, gen func(*rng.RNG) *graph.Instance) error {
	fmt.Println("== " + title + " ==")
	sw, err := experiments.NewSweep(label, sweepParams("", 0))
	if err != nil {
		return err
	}
	scheds := []scheduler.Scheduler{mustSched("CPoP"), mustSched("HEFT")}
	ro := runnerOptions("family")
	if ro.Shard, err = shardSpec(); err != nil {
		return err
	}
	ckpt := checkpoint(&ro, sw.Fingerprint)
	res, err := experiments.FamilyRun(gen, scheds, *flagN, *flagSeed, ro)
	if err != nil {
		return err
	}
	if ro.Shard.Enabled() {
		return shardDone(label, ro.Shard, ckpt)
	}
	removeCheckpoint(label, ckpt)
	for _, name := range res.Schedulers {
		fmt.Print(render.Histogram(name, res.Makespans[name], 10))
	}
	fmt.Println()
	return nil
}

func fig9() error {
	fmt.Println("== Fig 9: srasearch and blast workflow structures ==")
	r := rng.New(*flagSeed)
	for _, wf := range []string{"srasearch", "blast"} {
		g, err := datasets.WorkflowRecipe(wf, r.Split())
		if err != nil {
			return err
		}
		fmt.Printf("-- %s: %d tasks, %d dependencies --\n", wf, g.NumTasks(), g.NumDeps())
		order, err := g.TopoOrder()
		if err != nil {
			return err
		}
		for _, t := range order {
			if len(g.Succ[t]) == 0 {
				fmt.Printf("  %s (sink)\n", g.Tasks[t].Name)
				continue
			}
			fmt.Printf("  %s ->", g.Tasks[t].Name)
			for _, d := range g.Succ[t] {
				fmt.Printf(" %s", g.Tasks[d.To].Name)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	return nil
}

func appSpecific(workflow string) error {
	ccrs := experiments.CCRLevels
	if *flagCCR > 0 {
		ccrs = []float64{*flagCCR}
	}
	if *flagCkpt != "" && len(ccrs) > 1 {
		// A multi-CCR run reuses one store path across blocks: a naive
		// re-run after an interruption would start at the first CCR level
		// and trip over the interrupted block's fingerprint. Require the
		// block to be pinned so resume always works on the first try.
		return fmt.Errorf("appspecific -checkpoint needs a single block: pin one CCR level with -ccr")
	}
	scheds := schedulers.AppSpecific()
	for _, ccr := range ccrs {
		// One store per (workflow, CCR) block: the fingerprint pins the
		// block, and the store is removed once the block completes so the
		// next CCR level starts fresh at the same path.
		sw, err := experiments.NewSweep("appspecific", sweepParams(workflow, ccr))
		if err != nil {
			return err
		}
		ro := runnerOptions("appspecific")
		if ro.Shard, err = shardSpec(); err != nil {
			return err
		}
		ckpt := checkpoint(&ro, sw.Fingerprint)
		res, err := experiments.AppSpecificRun(scheds, experiments.AppSpecificOptions{
			Workflow:           workflow,
			CCR:                ccr,
			BenchmarkInstances: *flagN,
			Anneal:             anneal(),
		}, ro)
		if err != nil {
			return err
		}
		if ro.Shard.Enabled() {
			if err := shardDone("appspecific", ro.Shard, ckpt); err != nil {
				return err
			}
			continue
		}
		removeCheckpoint("appspecific", ckpt)
		rows := append([][]float64{}, res.Ratios...)
		rows = append(rows, res.Benchmark)
		rowLabels := append([]string{}, res.Schedulers...)
		rowLabels = append(rowLabels, "Benchmarking")
		fmt.Printf("== %s (CCR = %.1f): application-specific benchmarking + PISA ==\n", workflow, ccr)
		fmt.Print(render.Grid("", rowLabels, res.Schedulers, rows))
		fmt.Println()
	}
	return nil
}

// anneal delegates to the shared sweep identity so the annealing budget
// can never drift between a local run and a `saga worker` shard.
func anneal() core.Options {
	return sweepParams("", 0).Anneal()
}
