// Command saga is the CLI for the SAGA/PISA reproduction: list
// algorithms and datasets, generate problem instances, run a scheduler on
// an instance, run PISA for a scheduler pair, and run or merge shards of
// a distributed sweep.
//
// Usage:
//
//	saga list                                  # Table I roster
//	saga datasets                              # Table II roster
//	saga generate -dataset chains -out i.json  # draw an instance
//	saga schedule -scheduler HEFT -in i.json   # schedule it
//	saga pisa -target HEFT -base CPoP          # adversarial search
//	saga worker -driver fig4 -shard 2/8 -checkpoint s2.json   # one shard
//	saga merge  -driver fig4 -out merged.json s0.json s1.json # combine
//	saga coordinate -driver fig4 -checkpoint store.json       # lease cells out
//	saga worker -coordinator http://host:port                 # compute leases
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"saga/internal/coord"
	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/graph"
	"saga/internal/httpx"
	"saga/internal/render"
	"saga/internal/rng"
	"saga/internal/runner"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
	"saga/internal/serialize"
	"saga/internal/serve"
	"saga/internal/sim"
	"saga/internal/wfc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = list()
	case "datasets":
		err = listDatasets()
	case "generate":
		err = generate(args)
	case "schedule":
		err = scheduleCmd(args)
	case "pisa":
		err = pisaCmd(args)
	case "portfolio":
		err = portfolioCmd(args)
	case "robustness":
		err = robustnessCmd(args)
	case "convert":
		err = convertCmd(args)
	case "simulate":
		err = simulateCmd(args)
	case "benchmark":
		err = benchmarkCmd(args)
	case "describe":
		err = describeCmd(args)
	case "serve":
		err = serveCmd(args)
	case "worker":
		err = workerCmd(args)
	case "coordinate":
		err = coordinateCmd(args)
	case "merge":
		err = mergeCmd(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "saga: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: saga <command> [flags]

commands:
  list       list the implemented scheduling algorithms (Table I)
  datasets   list the available dataset generators (Table II)
  generate   -dataset <name> [-seed N] [-out file.json]
  schedule   -scheduler <name> -in file.json [-gantt] [-server URL]
  serve      [-addr host:port] [-max-concurrent N] [-queue-timeout D] [-cache N] [-workers N] [-drain-timeout D]
             [-coordinator URL] [-degrade-window D] [-token T] [-coordinator-token T] [-verbose]
  pisa       -target <name> -base <name> [-method sa|ga] [-iters N] [-restarts N] [-seed N] [-workers N] [-out file.json]
  portfolio  -k N [-schedulers a,b,c] [-iters N] [-restarts N] [-seed N] [-workers N] [-server URL]
  robustness -scheduler <name> -in file.json [-sigma F] [-n N] [-seed N] [-workers N] [-checkpoint file] [-shard I/C] [-server URL]
  convert    -from-wfc wf.json [-link F] [-ccr F] -out inst.json   (wfformat -> instance)
             -from-instance inst.json -out wf.json                 (instance -> wfformat)
  simulate   -scheduler <name> -in file.json [-contention]
  benchmark  [-datasets a,b] [-schedulers x,y] [-n N] [-seed N]
  describe   -dataset <name> [-n N] [-seed N]
  worker     -driver fig4|fig7|fig8|appspecific|robustness -shard I/C -checkpoint file [-n N] [-seed N]
             [-iters N] [-restarts N] [-workflow w] [-ccr F] [-scheduler s] [-sigma F] [-in file.json]
             [-workers N] [-chain-workers N] [-progress]
             or: -coordinator http://host:port [-name id] [-workers N] [-persist] [-token T] [-progress]
  coordinate -driver <name> -checkpoint store.json [-addr host:port] [-lease N] [-lease-ttl D]
             [-retries N] [-retry-backoff D] [-shuffle-seed N] [-token T] [-verbose] [sweep flags as for worker]
             or: -hub [-addr host:port] [-lease N] [-lease-ttl D] [-token T] [-verbose]   (serve many sweeps for dispatch)
             or: -watch http://host:port [-interval D] [-token T]                         (live progress line)
  merge      -driver <name> -out merged.json [sweep flags as for worker] shard1.json shard2.json ...`)
}

// tokenFlag registers the -token flag every networked subcommand
// shares: a bearer token presented to (or required by) the daemon and
// coordinator endpoints. The default comes from $SAGA_TOKEN so a fleet
// can be secured without editing every launch line; an empty token
// leaves the endpoint open.
func tokenFlag(fs *flag.FlagSet) *string {
	return fs.String("token", os.Getenv("SAGA_TOKEN"),
		"shared-secret bearer token for daemon/coordinator endpoints (default $SAGA_TOKEN; empty = no auth)")
}

func list() error {
	fmt.Println("schedulers (Table I):")
	for _, n := range scheduler.Names() {
		s, err := scheduler.New(n)
		if err != nil {
			return err
		}
		req := scheduler.RequirementsOf(s)
		suffix := ""
		if req.HomogeneousNodes && req.HomogeneousLinks {
			suffix = " (designed for homogeneous nodes and links)"
		} else if req.HomogeneousNodes {
			suffix = " (designed for homogeneous nodes)"
		} else if req.HomogeneousLinks {
			suffix = " (designed for homogeneous links)"
		}
		fmt.Printf("  %s%s\n", n, suffix)
	}
	return nil
}

func listDatasets() error {
	fmt.Println("datasets (Table II):")
	for _, n := range datasets.Names() {
		fmt.Printf("  %s\n", n)
	}
	return nil
}

func generate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	name := fs.String("dataset", "chains", "dataset generator name")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := datasets.New(*name)
	if err != nil {
		return err
	}
	inst := g.Generate(rng.New(*seed))
	data, err := serialize.MarshalInstance(inst)
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*out, data, 0o644)
}

func scheduleCmd(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	name := fs.String("scheduler", "HEFT", "scheduler name")
	in := fs.String("in", "", "instance JSON file (required)")
	gantt := fs.Bool("gantt", true, "render an ASCII Gantt chart")
	server := fs.String("server", "", "daemon URL (e.g. http://host:port); schedule via `saga serve` instead of in-process")
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("schedule: -in is required")
	}
	if *server != "" {
		// Thin-client mode: the daemon computes, this process renders. The
		// daemon's response is byte-identical to the in-process path below
		// (internal/serve identity suite), so the printed output matches.
		raw, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		inst, err := serialize.UnmarshalInstance(raw)
		if err != nil {
			return err
		}
		c := &serve.Client{BaseURL: strings.TrimRight(*server, "/"), Token: *token}
		resp, err := c.Schedule(context.Background(), serve.ScheduleRequest{Scheduler: *name, Instance: raw})
		if err != nil {
			return err
		}
		sch, err := serialize.UnmarshalSchedule(resp.Schedule)
		if err != nil {
			return err
		}
		fmt.Printf("%s makespan: %.6f\n", resp.Scheduler, resp.Makespan)
		if *gantt {
			fmt.Print(render.Gantt(inst, sch, 72))
		}
		return nil
	}
	inst, err := serialize.LoadInstance(*in)
	if err != nil {
		return err
	}
	s, err := scheduler.New(*name)
	if err != nil {
		return err
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		return err
	}
	fmt.Printf("%s makespan: %.6f\n", s.Name(), sch.Makespan())
	if *gantt {
		fmt.Print(render.Gantt(inst, sch, 72))
	}
	return nil
}

// serveCmd runs the scheduling daemon (internal/serve): schedule,
// portfolio and robustness requests over HTTP with per-request scratch
// leasing, instance caching, bounded admission and /metrics. SIGINT or
// SIGTERM drains in-flight requests (new ones are refused immediately)
// and exits cleanly.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address to serve on (port 0 picks a free port, printed at startup)")
	maxConc := fs.Int("max-concurrent", 0, "requests computed concurrently (0 = GOMAXPROCS)")
	queueTimeout := fs.Duration("queue-timeout", 2*time.Second, "how long a request may wait for a slot before 503")
	cacheEntries := fs.Int("cache", 64, "instance cache entries (content-hash keyed, LRU)")
	workers := fs.Int("workers", 1, "runner workers inside one portfolio/robustness request (results identical at any count)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	coordinator := fs.String("coordinator", "", "coordinator hub URL (`saga coordinate -hub`); farm portfolio/robustness sweeps to a worker fleet, falling back to local compute when none responds")
	degradeWindow := fs.Duration("degrade-window", 3*time.Second, "how long a dispatched sweep may go without worker progress before degrading to local execution")
	token := tokenFlag(fs)
	coordToken := fs.String("coordinator-token", "", "bearer token for the coordinator hub (default: same as -token)")
	verbose := fs.Bool("verbose", false, "log every request on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := serve.Options{
		MaxConcurrent:    *maxConc,
		QueueTimeout:     *queueTimeout,
		CacheEntries:     *cacheEntries,
		Workers:          *workers,
		Coordinator:      strings.TrimRight(*coordinator, "/"),
		DegradeWindow:    *degradeWindow,
		Token:            *token,
		CoordinatorToken: *coordToken,
	}
	if opts.CoordinatorToken == "" {
		opts.CoordinatorToken = *token
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: listening on http://%s\n", ln.Addr())
	fmt.Printf("serve: POST /v1/schedule /v1/portfolio /v1/robustness; GET /metrics /healthz\n")
	if opts.Coordinator != "" {
		fmt.Printf("serve: dispatching portfolio/robustness sweeps via %s (local fallback after %s without worker progress)\n",
			opts.Coordinator, *degradeWindow)
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Printf("serve: %v: draining in-flight requests (up to %s)\n", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		fmt.Println("serve: drained, exiting")
		return nil
	}
}

func pisaCmd(args []string) error {
	fs := flag.NewFlagSet("pisa", flag.ExitOnError)
	targetName := fs.String("target", "HEFT", "scheduler to find bad instances for")
	baseName := fs.String("base", "CPoP", "baseline scheduler")
	iters := fs.Int("iters", 1000, "iterations per restart")
	restarts := fs.Int("restarts", 5, "independent restarts")
	seed := fs.Uint64("seed", 1, "random seed")
	method := fs.String("method", "sa", "search meta-heuristic: sa (simulated annealing) or ga (genetic)")
	workers := fs.Int("workers", 0, "parallel workers inside the search (restart chains / offspring evaluation; 0 or 1 = sequential, results identical at any count)")
	out := fs.String("out", "", "write the worst-case instance JSON here")
	trace := fs.String("trace", "", "write the annealing trace CSV here (sa only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	target, err := scheduler.New(*targetName)
	if err != nil {
		return err
	}
	base, err := scheduler.New(*baseName)
	if err != nil {
		return err
	}
	var res *core.Result
	switch *method {
	case "sa":
		opts := core.DefaultOptions()
		opts.MaxIters = *iters
		opts.Restarts = *restarts
		opts.Seed = *seed
		opts.Workers = *workers
		opts.RecordTrace = *trace != ""
		res, err = experiments.SinglePISA(target, base, opts)
	case "ga":
		opts := core.DefaultGAOptions()
		opts.Generations = *iters / 10
		if opts.Generations < 1 {
			opts.Generations = 1
		}
		opts.Seed = *seed
		opts.Workers = *workers
		opts.InitialInstance = experiments.RandomChainInstance
		res, err = core.RunGA(target, base, opts)
	default:
		return fmt.Errorf("pisa: unknown method %q (want sa or ga)", *method)
	}
	if err != nil {
		return err
	}
	fmt.Printf("worst-case makespan ratio of %s against %s: %s (per-restart: %v)\n",
		target.Name(), base.Name(), render.Cell(res.BestRatio), res.RestartRatios)
	st, err := target.Schedule(res.Best)
	if err != nil {
		return err
	}
	sb, err := base.Schedule(res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("-- %s --\n%s-- %s --\n%s", target.Name(), render.Gantt(res.Best, st, 72),
		base.Name(), render.Gantt(res.Best, sb, 72))
	if *trace != "" && len(res.Trace) > 0 {
		if err := os.WriteFile(*trace, []byte(res.TraceCSV()), 0o644); err != nil {
			return err
		}
	}
	if *out != "" {
		return serialize.SaveInstance(*out, res.Best)
	}
	return nil
}

func portfolioCmd(args []string) error {
	fs := flag.NewFlagSet("portfolio", flag.ExitOnError)
	k := fs.Int("k", 3, "portfolio size")
	names := fs.String("schedulers", strings.Join(schedulers.AppSpecificNames, ","),
		"comma-separated scheduler names")
	iters := fs.Int("iters", 250, "PISA iterations per restart")
	restarts := fs.Int("restarts", 2, "PISA restarts per pair")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	server := fs.String("server", "", "daemon URL; run the grid on `saga serve` instead of in-process")
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nameList := strings.Split(*names, ",")
	for i := range nameList {
		nameList[i] = strings.TrimSpace(nameList[i])
	}
	if *server != "" {
		c := &serve.Client{BaseURL: strings.TrimRight(*server, "/"), Token: *token}
		resp, err := c.Portfolio(context.Background(), serve.PortfolioRequest{
			Schedulers: nameList, K: *k, Iters: *iters, Restarts: *restarts, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println("pairwise PISA grid (row = base, column = analyzed):")
		fmt.Print(render.Grid("", resp.Schedulers, resp.Schedulers, resp.Ratios))
		fmt.Printf("\nbest %d-scheduler portfolio: %s (combined worst-case ratio %s)\n",
			*k, strings.Join(resp.Members, " + "), render.Cell(resp.WorstRatio))
		return nil
	}
	var scheds []scheduler.Scheduler
	for _, n := range nameList {
		s, err := scheduler.New(n)
		if err != nil {
			return err
		}
		scheds = append(scheds, s)
	}
	opts := core.DefaultOptions()
	opts.MaxIters = *iters
	opts.Restarts = *restarts
	opts.Seed = *seed
	res, err := experiments.PairwisePISAParallel(scheds, experiments.PairwiseOptions{Anneal: opts}, *workers)
	if err != nil {
		return err
	}
	fmt.Println("pairwise PISA grid (row = base, column = analyzed):")
	fmt.Print(render.Grid("", res.Schedulers, res.Schedulers, res.Ratios))
	p, err := experiments.SelectPortfolioParallel(res.Schedulers, res.Ratios, *k, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest %d-scheduler portfolio: %s (combined worst-case ratio %s)\n",
		*k, strings.Join(p.Members, " + "), render.Cell(p.WorstRatio))
	return nil
}

func robustnessCmd(args []string) error {
	fs := flag.NewFlagSet("robustness", flag.ExitOnError)
	name := fs.String("scheduler", "HEFT", "scheduler name")
	in := fs.String("in", "", "instance JSON file (required)")
	sigma := fs.Float64("sigma", 0.2, "relative cost jitter (clipped gaussian sd)")
	n := fs.Int("n", 100, "jitter samples")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	ckptPath := fs.String("checkpoint", "", "checkpoint file (resume an interrupted jitter sweep)")
	shardStr := fs.String("shard", "", "compute only shard I/C of the jitter samples (requires -checkpoint; combine with `saga merge -driver robustness`)")
	server := fs.String("server", "", "daemon URL; run the jitter sweep on `saga serve` instead of in-process")
	token := tokenFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("robustness: -in is required")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if *server != "" {
		if *ckptPath != "" || *shardStr != "" {
			return fmt.Errorf("robustness: -server is incompatible with -checkpoint/-shard (the daemon owns the computation)")
		}
		c := &serve.Client{BaseURL: strings.TrimRight(*server, "/"), Token: *token}
		resp, err := c.Robustness(context.Background(), serve.RobustnessRequest{
			Scheduler: *name, Instance: raw, Sigma: *sigma, N: *n, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s nominal makespan: %.4f\n", resp.Scheduler, resp.Nominal)
		fmt.Printf("static replay under +/-%.0f%% cost jitter (n=%d): mean %.4f  p50 %.4f  max %.4f\n",
			*sigma*100, resp.Static.N, resp.Static.Mean, resp.Static.Median, resp.Static.Max)
		fmt.Printf("adaptive re-planning:                              mean %.4f  p50 %.4f  max %.4f\n",
			resp.Adaptive.Mean, resp.Adaptive.Median, resp.Adaptive.Max)
		return nil
	}
	ro := runner.Options{Workers: *workers}
	sharded := *shardStr != ""
	if sharded {
		if *ckptPath == "" {
			return fmt.Errorf("robustness: -shard requires -checkpoint (the store is the shard's output)")
		}
		if ro.Shard, err = runner.ParseShard(*shardStr); err != nil {
			return err
		}
	}
	// NewSweep carries the shared fingerprint: it hashes the exact bytes
	// the instance was parsed from, not the file path, so resuming after
	// the file was regenerated in place fails loudly instead of mixing
	// cells from two different instances. Going through the sweep registry
	// (rather than formatting the fingerprint here) is what makes a
	// robustness store interchangeable between this command, `saga
	// worker -driver robustness`, and `saga merge`.
	sw, err := experiments.NewSweep("robustness", experiments.SweepParams{
		N: *n, Seed: *seed, Scheduler: *name, Sigma: *sigma, InstanceRaw: raw,
	})
	if err != nil {
		return err
	}
	inst, err := serialize.UnmarshalInstance(raw)
	if err != nil {
		return err
	}
	s, err := scheduler.New(*name)
	if err != nil {
		return err
	}
	var ckpt *serialize.Checkpoint
	if *ckptPath != "" {
		ckpt = serialize.NewCheckpoint(*ckptPath)
		ckpt.SetFingerprint(sw.Fingerprint)
		ro.Checkpoint = ckpt
	}
	res, err := experiments.RobustnessRun(inst, s, *sigma, *n, *seed, ro)
	if err != nil {
		return err
	}
	if sharded {
		// A shard's output is its store, not the partial in-memory
		// summaries (they cover owned cells only). Leave a fingerprinted
		// store even when this shard owns zero cells.
		if err := ckpt.Touch(); err != nil {
			return err
		}
		fmt.Printf("robustness: shard %s complete; cells stored in %s (combine with `saga merge -driver robustness`)\n",
			ro.Shard, *ckptPath)
		return nil
	}
	if ckpt != nil {
		if err := ckpt.Remove(); err != nil {
			fmt.Fprintf(os.Stderr, "saga: robustness: checkpoint cleanup: %v\n", err)
		}
	}
	fmt.Printf("%s nominal makespan: %.4f\n", res.Scheduler, res.Nominal)
	fmt.Printf("static replay under +/-%.0f%% cost jitter (n=%d): mean %.4f  p50 %.4f  max %.4f\n",
		*sigma*100, res.Static.N, res.Static.Mean, res.Static.Median, res.Static.Max)
	fmt.Printf("adaptive re-planning:                              mean %.4f  p50 %.4f  max %.4f\n",
		res.Adaptive.Mean, res.Adaptive.Median, res.Adaptive.Max)
	return nil
}

// convertCmd bridges the WfCommons wfformat and this repository's
// instance JSON: real execution-trace workflows can be imported and
// scheduled, and generated or adversarial instances exported for other
// WfCommons-compatible tools.
func convertCmd(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	fromWfc := fs.String("from-wfc", "", "wfformat JSON to import")
	fromInst := fs.String("from-instance", "", "instance JSON to export as wfformat")
	link := fs.Float64("link", 1, "uniform link strength for imported networks")
	ccr := fs.Float64("ccr", 0, "if > 0, set homogeneous links for this average CCR instead")
	nodes := fs.Int("nodes", 4, "network size when the wfformat file lists no machines")
	out := fs.String("out", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var data []byte
	switch {
	case *fromWfc != "" && *fromInst != "":
		return fmt.Errorf("convert: -from-wfc and -from-instance are mutually exclusive")
	case *fromWfc != "":
		raw, err := os.ReadFile(*fromWfc)
		if err != nil {
			return err
		}
		doc, err := wfc.Parse(raw)
		if err != nil {
			return err
		}
		g, err := doc.ToTaskGraph()
		if err != nil {
			return err
		}
		net := doc.ToNetwork(*link)
		if net == nil {
			net = graphNewUnitNetwork(*nodes, *link)
		}
		inst := graphNewInstance(g, net)
		if *ccr > 0 {
			datasets.SetHomogeneousCCR(inst, *ccr)
		}
		if err := inst.Validate(); err != nil {
			return err
		}
		data, err = serialize.MarshalInstance(inst)
		if err != nil {
			return err
		}
	case *fromInst != "":
		inst, err := serialize.LoadInstance(*fromInst)
		if err != nil {
			return err
		}
		doc := wfc.FromTaskGraph("saga-export", inst.Graph)
		data, err = doc.Marshal()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("convert: one of -from-wfc or -from-instance is required")
	}
	if *out == "" {
		fmt.Println(string(data))
		return nil
	}
	return os.WriteFile(*out, data, 0o644)
}

// graphNewUnitNetwork builds an n-node unit-speed network with the given
// uniform link strength, for imported workflows without machine data.
func graphNewUnitNetwork(n int, link float64) *graph.Network {
	net := graph.NewNetwork(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			net.SetLink(u, v, link)
		}
	}
	return net
}

// graphNewInstance is a local alias keeping convertCmd readable.
func graphNewInstance(g *graph.TaskGraph, net *graph.Network) *graph.Instance {
	return graph.NewInstance(g, net)
}

// simulateCmd schedules an instance and replays the result on the
// discrete-event platform simulator, reporting utilization, message
// counts, and — with -contention — how much single-channel links stretch
// the makespan beyond the contention-free model every scheduler assumes.
func simulateCmd(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	name := fs.String("scheduler", "HEFT", "scheduler name")
	in := fs.String("in", "", "instance JSON file (required)")
	contention := fs.Bool("contention", false, "serialize concurrent transfers per link")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("simulate: -in is required")
	}
	inst, err := serialize.LoadInstance(*in)
	if err != nil {
		return err
	}
	s, err := scheduler.New(*name)
	if err != nil {
		return err
	}
	sch, err := s.Schedule(inst)
	if err != nil {
		return err
	}
	strict, err := sim.Execute(inst, sch)
	if err != nil {
		return fmt.Errorf("simulate: schedule not executable: %w", err)
	}
	fmt.Printf("%s planned makespan:   %.6f\n", s.Name(), sch.Makespan())
	fmt.Printf("simulated makespan:     %.6f (%d remote transfers, utilization %.1f%%)\n",
		strict.Makespan, strict.Messages, 100*strict.Utilization())
	if *contention {
		cont, err := sim.ExecuteElastic(inst, sch, sim.ElasticOptions{LinkContention: true})
		if err != nil {
			return err
		}
		fmt.Printf("with link contention:   %.6f (%.2fx the contention-free plan)\n",
			cont.Makespan, cont.Makespan/sch.Makespan())
	}
	return nil
}

// benchmarkCmd runs a Fig 2-style benchmarking sweep over chosen
// datasets and schedulers.
func benchmarkCmd(args []string) error {
	fs := flag.NewFlagSet("benchmark", flag.ExitOnError)
	ds := fs.String("datasets", "chains,in_trees,out_trees", "comma-separated dataset names")
	names := fs.String("schedulers", strings.Join(schedulers.AppSpecificNames, ","),
		"comma-separated scheduler names")
	n := fs.Int("n", 20, "instances per dataset")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scheds []scheduler.Scheduler
	for _, nm := range strings.Split(*names, ",") {
		s, err := scheduler.New(strings.TrimSpace(nm))
		if err != nil {
			return err
		}
		scheds = append(scheds, s)
	}
	dsNames := strings.Split(*ds, ",")
	for i := range dsNames {
		dsNames[i] = strings.TrimSpace(dsNames[i])
	}
	res, err := experiments.BenchmarkingParallel(dsNames, scheds, *n, *seed, *workers)
	if err != nil {
		return err
	}
	fmt.Print(render.Grid(
		fmt.Sprintf("max makespan ratio against the best scheduler (%d instances/dataset)", *n),
		res.Datasets, res.Schedulers, res.MaxGrid()))
	return nil
}

// sweepFlags registers the sweep-parameter flags shared by worker and
// merge. The defaults come from experiments.DefaultSweepParams — the
// same source cmd/figures draws its flag defaults from — so a worker
// launched with the same flags as a `figures` run writes cells the
// figures process can resume from (and vice versa).
func sweepFlags(fs *flag.FlagSet) func() (experiments.SweepParams, error) {
	d := experiments.DefaultSweepParams()
	n := fs.Int("n", d.N, "instances per dataset / family samples / jitter samples (as figures -n)")
	seed := fs.Uint64("seed", d.Seed, "root random seed")
	iters := fs.Int("iters", d.Iters, "PISA iterations per restart")
	restarts := fs.Int("restarts", d.Restarts, "PISA restarts per pair")
	workflow := fs.String("workflow", d.Workflow, "workflow for the appspecific driver")
	ccr := fs.Float64("ccr", d.CCR, "CCR block for the appspecific driver (required > 0 there)")
	sched := fs.String("scheduler", "HEFT", "scheduler for the robustness driver")
	sigma := fs.Float64("sigma", 0.2, "relative cost jitter for the robustness driver")
	in := fs.String("in", "", "instance JSON file for the robustness driver (required there)")
	chainWorkers := fs.Int("chain-workers", 0, "parallel workers inside each annealing cell (0 or 1 = sequential; results identical at any count)")
	return func() (experiments.SweepParams, error) {
		p := experiments.SweepParams{
			N: *n, Seed: *seed, Iters: *iters, Restarts: *restarts,
			Workflow: *workflow, CCR: *ccr,
			Scheduler: *sched, Sigma: *sigma, ChainWorkers: *chainWorkers,
		}
		if *in != "" {
			raw, err := os.ReadFile(*in)
			if err != nil {
				return p, err
			}
			p.InstanceRaw = raw
		}
		return p, nil
	}
}

// workerCmd computes cells of a distributed sweep, in either of two
// modes. Static sharding (-shard I/C): only the cells with index ≡ I
// (mod C) are computed — with their global position-derived seeds — and
// persisted to this shard's checkpoint store; the store is the shard's
// output, to be combined by `saga merge`. Dynamic leasing
// (-coordinator URL): the worker fetches the sweep identity from a
// `saga coordinate` process, leases cell ranges, and delivers results
// over HTTP — the coordinator owns the one store, reassigns the cells
// of dead workers, and no merge step is needed. Either way, killing
// and restarting a worker loses nothing.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	driver := fs.String("driver", "", "sweep to shard: "+strings.Join(experiments.SweepNames, ", ")+" (required unless -coordinator)")
	shardStr := fs.String("shard", "", "this worker's shard I/C, e.g. 2/8 (required unless -coordinator)")
	ckptPath := fs.String("checkpoint", "", "this shard's checkpoint store (required unless -coordinator; one file per shard)")
	coordURL := fs.String("coordinator", "", "coordinator URL (e.g. http://host:port); lease cells dynamically instead of -driver/-shard/-checkpoint")
	name := fs.String("name", "", "worker name in coordinator logs (default host-pid)")
	workers := fs.Int("workers", 0, "parallel workers within this shard or lease (0 = GOMAXPROCS)")
	persist := fs.Bool("persist", false, "fleet mode: stay alive across sweeps and coordinator restarts (requires -coordinator; stop with SIGINT/SIGTERM)")
	token := tokenFlag(fs)
	progress := fs.Bool("progress", false, "report progress on stderr")
	params := sweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordURL != "" {
		if *driver != "" || *shardStr != "" || *ckptPath != "" {
			return fmt.Errorf("worker: -coordinator replaces -driver, -shard and -checkpoint (the coordinator serves the sweep and owns the store)")
		}
		nm := *name
		if nm == "" {
			host, err := os.Hostname()
			if err != nil {
				host = "worker"
			}
			nm = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		wo := coord.WorkerOptions{
			Name:    nm,
			Workers: *workers,
			Persist: *persist,
			Client:  httpx.NewBearerClient(nil, *token),
		}
		if *progress {
			wo.Progress = runner.ProgressPrinter(os.Stderr, "worker "+nm)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := coord.RunWorker(ctx, *coordURL, wo); err != nil {
			if errors.Is(err, context.Canceled) {
				// Signal-driven shutdown: any lease in flight was dropped
				// cleanly (the coordinator reaps it) — a clean fleet drain.
				fmt.Printf("worker: %s stopped by signal\n", nm)
				return nil
			}
			if errors.Is(err, coord.ErrCoordinatorGone) {
				// The coordinator finished (or crashed; its store resumes).
				// Either way this worker has nothing left to do — every
				// delivered cell is already durable on the coordinator side.
				fmt.Printf("worker: %s stopping: %v\n", nm, err)
				return nil
			}
			return err
		}
		fmt.Printf("worker: %s done (sweep finished at %s)\n", nm, *coordURL)
		return nil
	}
	if *persist {
		return fmt.Errorf("worker: -persist requires -coordinator (static shards end with their shard)")
	}
	if *driver == "" || *shardStr == "" || *ckptPath == "" {
		return fmt.Errorf("worker: -driver, -shard and -checkpoint are required (or -coordinator for dynamic leasing)")
	}
	shard, err := runner.ParseShard(*shardStr)
	if err != nil {
		return err
	}
	p, err := params()
	if err != nil {
		return err
	}
	sw, err := experiments.NewSweep(*driver, p)
	if err != nil {
		return err
	}
	ckpt := serialize.NewCheckpoint(*ckptPath)
	ckpt.SetFingerprint(sw.Fingerprint)
	ro := runner.Options{Workers: *workers, Shard: shard, Checkpoint: ckpt}
	if *progress {
		ro.Progress = runner.ProgressPrinter(os.Stderr, fmt.Sprintf("worker %s %s", sw.Name, shard))
	}
	if err := sw.Run(ro); err != nil {
		return err
	}
	// A shard owning zero cells (more shards than cells) stores nothing;
	// still leave a fingerprinted empty store so the merge sees every
	// shard it expects.
	if err := ckpt.Touch(); err != nil {
		return err
	}
	fmt.Printf("worker: %s shard %s complete; cells stored in %s (combine with `saga merge -driver %s`)\n",
		sw.Name, shard, *ckptPath, sw.Name)
	return nil
}

// coordinateCmd serves a registered sweep to dynamically leased
// workers (internal/coord): cells are handed out in ranges, renewed by
// heartbeat, reclaimed from workers that die or hang, retried with
// backoff when they fail, and streamed into the one checkpoint store as
// they complete. The store is the same format `saga worker -shard` and
// cmd/figures -checkpoint use — when the sweep finishes, render straight
// from it. Restarting a crashed coordinator on the same store resumes:
// committed cells are never recomputed.
func coordinateCmd(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	driver := fs.String("driver", "", "sweep to coordinate: "+strings.Join(experiments.SweepNames, ", ")+" (required unless -hub/-watch)")
	addr := fs.String("addr", "127.0.0.1:0", "address to serve the protocol on (0 picks a free port, printed at startup)")
	ckptPath := fs.String("checkpoint", "", "the sweep's checkpoint store (required unless -hub/-watch; resumed if it exists)")
	hub := fs.Bool("hub", false, "host a multi-sweep hub for `saga serve -coordinator` dispatch instead of one fixed sweep")
	watch := fs.String("watch", "", "coordinator or hub URL: render GET /status as a live progress line instead of serving")
	interval := fs.Duration("interval", time.Second, "poll cadence for -watch")
	token := tokenFlag(fs)
	leaseSize := fs.Int("lease", 8, "cells per lease")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat before its cells are reclaimed")
	retries := fs.Int("retries", 3, "attempts per cell before it is poisoned (reported, excluded, sweep continues)")
	retryBackoff := fs.Duration("retry-backoff", time.Second, "delay before retrying a failed cell (doubles per attempt)")
	shuffleSeed := fs.Uint64("shuffle-seed", 0, "lease cells in seed-derived random order (0 = index order; results identical either way)")
	verbose := fs.Bool("verbose", false, "log every protocol event on stderr")
	params := sweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watch != "" {
		return watchStatus(strings.TrimRight(*watch, "/"), *token, *interval)
	}
	opts := coord.Options{
		LeaseSize:    *leaseSize,
		LeaseTTL:     *leaseTTL,
		MaxRetries:   *retries,
		RetryBackoff: *retryBackoff,
		ShuffleSeed:  *shuffleSeed,
		Token:        *token,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *hub {
		if *driver != "" || *ckptPath != "" {
			return fmt.Errorf("coordinate: -hub hosts sweeps registered by daemons; it takes no -driver or -checkpoint")
		}
		return hubServe(*addr, opts, *verbose)
	}
	if *driver == "" || *ckptPath == "" {
		return fmt.Errorf("coordinate: -driver and -checkpoint are required (or -hub / -watch)")
	}
	p, err := params()
	if err != nil {
		return err
	}
	c, err := coord.New(*driver, p, serialize.NewCheckpoint(*ckptPath), opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := c.Status()
	fmt.Printf("coordinate: %s (%d cells, %d already in store) on http://%s\n",
		*driver, st.Cells, st.Committed, ln.Addr())
	fmt.Printf("coordinate: start workers with `saga worker -coordinator http://%s`\n", ln.Addr())
	srv := &http.Server{Handler: c}
	go srv.Serve(ln)
	defer srv.Close()
	if err := c.Wait(nil); err != nil {
		return err
	}
	fmt.Printf("coordinate: sweep %s complete; %d cells in %s (render with `figures -checkpoint %s %s`, same sweep flags)\n",
		*driver, st.Cells, *ckptPath, *ckptPath, *driver)
	return nil
}

// hubServe runs a coordinator hub (`saga coordinate -hub`): an empty
// multi-sweep coordinator that `saga serve -coordinator` daemons
// register portfolio/robustness sweeps on and `saga worker -coordinator
// <hub> -persist` fleets drain. It holds no durable state — a restarted
// hub starts empty and daemons re-register their in-flight sweeps onto
// the same content-hash ids — so there is no -checkpoint; results leave
// through GET /sweeps/{id}/cells. SIGINT or SIGTERM stops it.
func hubServe(addr string, opts coord.Options, verbose bool) error {
	hopts := coord.HubOptions{Sweep: opts, Token: opts.Token}
	if verbose {
		hopts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	h := coord.NewHub(hopts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("coordinate: hub on http://%s\n", ln.Addr())
	fmt.Printf("coordinate: daemons: `saga serve -coordinator http://%s`; fleets: `saga worker -coordinator http://%s -persist`\n",
		ln.Addr(), ln.Addr())
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Printf("coordinate: %v: hub stopping (daemons degrade to local, workers re-poll)\n", got)
		return srv.Close()
	}
}

// watchStatus renders GET /status — a bare coordinator's ledger or a
// hub's merged view across every mounted sweep — as one live progress
// line, refreshed in place until the sweep (or the whole hub) is done.
func watchStatus(base, token string, interval time.Duration) error {
	client := httpx.NewBearerClient(nil, token)
	for {
		var st coord.Status
		if err := httpx.GetJSON(context.Background(), client, base+"/status", &st); err != nil {
			fmt.Println()
			return err
		}
		line := fmt.Sprintf("watch: %s  %d/%d cells  %d leased  %d retrying  %d poisoned",
			st.Name, st.Committed, st.Cells, st.Leased, st.RetryWait, st.Poisoned)
		if st.Name == "hub" {
			line += fmt.Sprintf("  |  %d sweeps  %d workers", st.Sweeps, st.ActiveWorkers)
		}
		// \r + erase-to-EOL keeps the line stable as counts shrink.
		fmt.Printf("\r\x1b[K%s", line)
		if st.Done {
			fmt.Println()
			return nil
		}
		time.Sleep(interval)
	}
}

// mergeCmd combines per-shard checkpoint stores into one complete store
// that a single-process run of the same sweep (same flags, -checkpoint
// pointing at the merged file) loads in full — rendering the figure
// without recomputing a single cell. The sweep flags must match the ones
// the workers ran with: they determine the fingerprint every store is
// verified against and the cell count the merge must cover.
func mergeCmd(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	driver := fs.String("driver", "", "sweep the shards belong to: "+strings.Join(experiments.SweepNames, ", ")+" (required)")
	out := fs.String("out", "", "merged checkpoint store to write (required)")
	params := sweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *driver == "" || *out == "" {
		return fmt.Errorf("merge: -driver and -out are required")
	}
	shards := fs.Args()
	if len(shards) == 0 {
		return fmt.Errorf("merge: no shard stores given (pass them as positional arguments)")
	}
	p, err := params()
	if err != nil {
		return err
	}
	sw, err := experiments.NewSweep(*driver, p)
	if err != nil {
		return err
	}
	n, err := serialize.MergeCheckpoints(*out, sw.Fingerprint, sw.Cells, shards)
	if err != nil {
		return err
	}
	if sw.Name == "robustness" {
		fmt.Printf("merge: %s complete — %d cells from %d shards in %s; summarize with `saga robustness -checkpoint %s` (same flags)\n",
			sw.Name, n, len(shards), *out, *out)
		return nil
	}
	// Flags must precede the figure name: cmd/figures uses the global
	// flag.Parse, which stops at the first positional argument.
	fmt.Printf("merge: %s complete — %d cells from %d shards in %s; render with `figures -checkpoint %s %s` (same sweep flags)\n",
		sw.Name, n, len(shards), *out, *out, sw.Name)
	return nil
}

// describeCmd prints structural statistics of a dataset sample.
func describeCmd(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	name := fs.String("dataset", "chains", "dataset generator name")
	n := fs.Int("n", 50, "sample size")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	instances, err := datasets.Dataset(*name, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Print(datasets.Describe(*name, instances).String())
	return nil
}
