// Package saga's root benchmark harness: one benchmark per paper table
// and figure (see EXPERIMENTS.md for the index), plus per-algorithm
// microbenchmarks and ablations of the design choices DESIGN.md calls
// out. Benchmarks run at reduced scale so `go test -bench=.` finishes in
// seconds; every driver takes the paper-scale parameters through
// cmd/figures flags instead.
package saga

import (
	"fmt"
	"runtime"
	"testing"

	"saga/internal/core"
	"saga/internal/datasets"
	"saga/internal/exact"
	"saga/internal/experiments"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/runner"
	"saga/internal/schedule"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
	"saga/internal/serialize"
	"saga/internal/sim"
	"saga/internal/wfc"
)

func mustSched(b *testing.B, name string) scheduler.Scheduler {
	b.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func smallAnneal(iters, restarts int) core.Options {
	o := core.DefaultOptions()
	o.MaxIters = iters
	o.Restarts = restarts
	return o
}

// BenchmarkTable1SchedulerRoster exercises every Table I algorithm once
// per iteration on the Fig 1 instance — the per-algorithm scheduling
// cost on a tiny instance.
func BenchmarkTable1SchedulerRoster(b *testing.B) {
	inst := datasets.Fig1Instance()
	names := append(append([]string{}, schedulers.ExperimentalNames...), "BruteForce", "SMT")
	for _, name := range names {
		s := mustSched(b, name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2DatasetGenerators draws one instance from every Table
// II generator per iteration.
func BenchmarkTable2DatasetGenerators(b *testing.B) {
	for _, name := range datasets.TableII {
		g, err := datasets.New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			r := rng.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst := g.Generate(r.Split())
				if inst.Graph.NumTasks() == 0 {
					b.Fatal("empty instance")
				}
			}
		})
	}
}

// BenchmarkFig2Benchmarking runs the benchmarking grid at reduced scale:
// all 15 algorithms on 2 instances of every dataset per iteration.
func BenchmarkFig2Benchmarking(b *testing.B) {
	scheds := schedulers.Experimental()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Benchmarking(datasets.TableII, scheds, 2, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3NetworkModification schedules the Fig 3 instance pair
// with HEFT and CPoP per iteration.
func BenchmarkFig3NetworkModification(b *testing.B) {
	heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
	orig, mod := datasets.Fig3Instance(false), datasets.Fig3Instance(true)
	for i := 0; i < b.N; i++ {
		for _, inst := range []*graph.Instance{orig, mod} {
			if _, err := heft.Schedule(inst); err != nil {
				b.Fatal(err)
			}
			if _, err := cpop.Schedule(inst); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4PISAPairwise runs the pairwise adversarial grid over a
// 4-scheduler subset at reduced annealing scale per iteration. The full
// 15x15 paper grid is cmd/figures fig4.
func BenchmarkFig4PISAPairwise(b *testing.B) {
	scheds := []scheduler.Scheduler{
		mustSched(b, "HEFT"), mustSched(b, "CPoP"),
		mustSched(b, "MinMin"), mustSched(b, "FastestNode"),
	}
	for i := 0; i < b.N; i++ {
		opts := experiments.PairwiseOptions{Anneal: smallAnneal(50, 1)}
		opts.Anneal.Seed = uint64(i + 1)
		if _, err := experiments.PairwisePISA(scheds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SinglePair measures one full-scale PISA run (the paper's
// 1000 iterations x 5 restarts) for the headline HEFT-vs-FastestNode
// comparison.
func BenchmarkFig4SinglePair(b *testing.B) {
	heft, fastest := mustSched(b, "HEFT"), mustSched(b, "FastestNode")
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Seed = uint64(i + 1)
		if _, err := experiments.SinglePISA(heft, fastest, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5CaseStudy and BenchmarkFig6CaseStudy schedule the case
// study instances with both algorithms per iteration.
func BenchmarkFig5CaseStudy(b *testing.B) {
	benchCaseStudy(b, datasets.Fig5Instance())
}

// BenchmarkFig6CaseStudy is the CPoP-loses case study.
func BenchmarkFig6CaseStudy(b *testing.B) {
	benchCaseStudy(b, datasets.Fig6Instance())
}

func benchCaseStudy(b *testing.B, inst *graph.Instance) {
	heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
	for i := 0; i < b.N; i++ {
		if _, err := heft.Schedule(inst); err != nil {
			b.Fatal(err)
		}
		if _, err := cpop.Schedule(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ForkJoinFamily samples the HEFT-loses family (100
// instances per iteration, vs the paper's 1000) and schedules both
// algorithms.
func BenchmarkFig7ForkJoinFamily(b *testing.B) {
	benchFamily(b, datasets.Fig7Instance)
}

// BenchmarkFig8WideForkFamily samples the CPoP-loses family.
func BenchmarkFig8WideForkFamily(b *testing.B) {
	benchFamily(b, datasets.Fig8Instance)
}

func benchFamily(b *testing.B, gen func(*rng.RNG) *graph.Instance) {
	scheds := []scheduler.Scheduler{mustSched(b, "CPoP"), mustSched(b, "HEFT")}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Family(gen, scheds, 100, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9WorkflowStructures generates the two Fig 9 workflow
// topologies per iteration.
func BenchmarkFig9WorkflowStructures(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		for _, wf := range []string{"srasearch", "blast"} {
			if _, err := datasets.WorkflowRecipe(wf, r.Split()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig10AppSpecificPISA runs one application-specific block
// (srasearch at CCR 0.2, the paper's Fig 10 top-left) with a reduced
// scheduler pair set and annealing scale.
func BenchmarkFig10AppSpecificPISA(b *testing.B) {
	scheds := []scheduler.Scheduler{mustSched(b, "HEFT"), mustSched(b, "CPoP")}
	for i := 0; i < b.N; i++ {
		ao := smallAnneal(30, 1)
		ao.Seed = uint64(i + 1)
		_, err := experiments.AppSpecific(scheds, experiments.AppSpecificOptions{
			Workflow:           "srasearch",
			CCR:                0.2,
			BenchmarkInstances: 2,
			Anneal:             ao,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// hotPathInstance builds the fixed random-graph instance behind
// BenchmarkScheduleHotPath: a layered DAG of 64 tasks over a 6-node
// heterogeneous network, all weights drawn from the Section IV-B clipped
// gaussian. The seed is fixed so pre/post comparisons in
// BENCH_hotpath.json measure the same workload.
func hotPathInstance() *graph.Instance {
	r := rng.New(0x407)
	g := graph.NewTaskGraph()
	const layers, width = 8, 8
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			t := g.AddTask(fmt.Sprintf("t%d_%d", l, w), r.ClippedGaussian(1, 1.0/3, 0.2, 2))
			if l > 0 {
				preds := 1 + r.Intn(3)
				for k := 0; k < preds; k++ {
					p := (l-1)*width + r.Intn(width)
					if !g.HasDep(p, t) {
						g.MustAddDep(p, t, r.ClippedGaussian(1, 1.0/3, 0.2, 2))
					}
				}
			}
		}
	}
	net := graph.NewNetwork(6)
	for v := range net.Speeds {
		net.Speeds[v] = r.ClippedGaussian(1, 1.0/3, 0.2, 2)
		for u := v + 1; u < net.NumNodes(); u++ {
			net.SetLink(v, u, r.ClippedGaussian(1, 1.0/3, 0.2, 2))
		}
	}
	return graph.NewInstance(g, net)
}

// BenchmarkScheduleHotPath measures one full Schedule() call per
// iteration for every Table I list scheduler on the random-graph scale
// (64 tasks, 6 nodes) — the scheduling inner loop PISA drives thousands
// of times per annealing chain, exercised exactly as core.Run drives it:
// a warm per-worker scratch and a reused output schedule. Run with
// -benchmem; steady state must report 0 allocs/op. The committed
// pre/post numbers live in BENCH_hotpath.json (pre = the allocating
// builder-per-call path this replaced).
func BenchmarkScheduleHotPath(b *testing.B) {
	inst := hotPathInstance()
	for _, name := range schedulers.ExperimentalNames {
		s := mustSched(b, name)
		b.Run(name, func(b *testing.B) {
			scr := scheduler.NewScratch()
			var out schedule.Schedule
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := scheduler.ScheduleInto(s, inst, scr, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulersOnWorkflow measures each experimental algorithm on
// a realistic mid-size instance (a montage workflow over a 6-node
// network) — the schedule-generation-time comparison Table I reports
// complexities for.
func BenchmarkSchedulersOnWorkflow(b *testing.B) {
	r := rng.New(42)
	g, err := datasets.WorkflowRecipe("montage", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	net := graph.NewNetwork(6)
	rr := r.Split()
	for v := range net.Speeds {
		net.Speeds[v] = rr.ClippedGaussian(1, 1.0/3, 0.2, 2)
	}
	inst := graph.NewInstance(g, net)
	datasets.SetHomogeneousCCR(inst, 1)
	for _, s := range schedulers.Experimental() {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulersOnEdgeFogCloud measures the algorithms on the
// large-network IoT scenario (≈100 nodes).
func BenchmarkSchedulersOnEdgeFogCloud(b *testing.B) {
	r := rng.New(43)
	g, err := datasets.IoTRecipe("etl", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	inst := graph.NewInstance(g, datasets.EdgeFogCloudNetwork(r.Split()))
	for _, name := range []string{"HEFT", "CPoP", "MinMin", "ETF", "GDL", "BIL"} {
		s := mustSched(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInsertion quantifies HEFT's insertion policy — the
// design choice separating HEFT from MCT-style appending (DESIGN.md).
// Both variants use HEFT's upward-rank order; only slot search differs.
func BenchmarkAblationInsertion(b *testing.B) {
	r := rng.New(44)
	g, err := datasets.WorkflowRecipe("epigenomics", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	net := graph.NewNetwork(5)
	inst := graph.NewInstance(g, net)
	for _, insertion := range []bool{true, false} {
		insertion := insertion
		name := "insertion"
		if !insertion {
			name = "append"
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				bld := schedule.NewBuilder(inst)
				rank := scheduler.UpwardRank(inst)
				for _, t := range scheduler.TopoOrderByPriority(inst.Graph, rank) {
					v, start := bld.BestEFTNode(t, insertion)
					bld.Place(t, v, start)
				}
				makespan = bld.Makespan()
			}
			b.ReportMetric(makespan, "makespan")
		})
	}
}

// BenchmarkAblationRestarts quantifies PISA's restart count: the best
// ratio found with 1 vs 5 restarts at fixed per-restart budget.
func BenchmarkAblationRestarts(b *testing.B) {
	heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
	for _, restarts := range []int{1, 5} {
		restarts := restarts
		b.Run(fmt.Sprintf("restarts=%d", restarts), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				opts := smallAnneal(100, restarts)
				opts.Seed = uint64(i + 1)
				res, err := experiments.SinglePISA(heft, cpop, opts)
				if err != nil {
					b.Fatal(err)
				}
				best = res.BestRatio
			}
			b.ReportMetric(best, "ratio")
		})
	}
}

// BenchmarkExactSolver measures the branch-and-bound optimum on PISA-size
// instances (the SMT substitute's inner loop).
func BenchmarkExactSolver(b *testing.B) {
	insts := make([]*graph.Instance, 8)
	r := rng.New(45)
	for i := range insts {
		insts[i] = datasets.InitialPISAInstance(r.Split())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Solve(insts[i%len(insts)], exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPISARun measures one full PISA run end to end — the
// incremental inner loop (mutate in place, undo log, delta Tables
// updates, rank memoization across the scheduler pair) against the
// retained copy-and-rebuild, cache-disabled reference
// (core.RunReference) on identical options, seeds, and scheduler pair.
// The two produce byte-identical Results (proven in
// internal/core/incremental_test.go), so the ratio of their ns/op is
// the pure speedup of the candidate-generation rewrite plus the shared
// evaluation cache. Per-iteration numbers and the allocation gate live
// in internal/core.BenchmarkPISAIteration; the committed record is
// BENCH_pisa.json (`make bench-pisa` protocol).
func BenchmarkPISARun(b *testing.B) {
	variants := []struct {
		name string
		run  func(target, baseline scheduler.Scheduler, opts core.Options) (*core.Result, error)
	}{
		{"incremental", core.Run},
		{"reference", core.RunReference},
		// parallel is core.Run with Workers=NumCPU — bit-identical results
		// (internal/core/parallel_test.go), so its ns/op against the
		// incremental variant is the pure intra-cell scaling. On a
		// single-core host it measures the parallel path's overhead instead.
		{"parallel", func(target, baseline scheduler.Scheduler, opts core.Options) (*core.Result, error) {
			opts.Workers = runtime.NumCPU()
			return core.Run(target, baseline, opts)
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := smallAnneal(500, 2)
				opts.Seed = uint64(i + 1)
				opts.InitialInstance = datasets.InitialPISAInstance
				if _, err := v.run(heft, cpop, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPISAPerturbation measures the perturbation+evaluation inner
// loop in isolation.
func BenchmarkPISAPerturbation(b *testing.B) {
	heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
	for i := 0; i < b.N; i++ {
		opts := smallAnneal(10, 1)
		opts.Seed = uint64(i + 1)
		if _, err := experiments.SinglePISA(heft, cpop, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerializeRoundTrip measures instance JSON encode+decode.
func BenchmarkSerializeRoundTrip(b *testing.B) {
	inst := datasets.Fig1Instance()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := serialize.MarshalInstance(inst)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := serialize.UnmarshalInstance(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleValidation measures the Section II validity checker.
func BenchmarkScheduleValidation(b *testing.B) {
	r := rng.New(46)
	g, err := datasets.WorkflowRecipe("genome", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(5))
	sch, err := mustSched(b, "HEFT").Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := schedule.Validate(inst, sch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorExecute measures the discrete-event executor on a
// montage-workflow schedule.
func BenchmarkSimulatorExecute(b *testing.B) {
	r := rng.New(47)
	g, err := datasets.WorkflowRecipe("montage", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	inst := graph.NewInstance(g, graph.NewNetwork(5))
	sch, err := mustSched(b, "HEFT").Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Execute(inst, sch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorElasticContention measures the contention-aware
// elastic replay.
func BenchmarkSimulatorElasticContention(b *testing.B) {
	r := rng.New(48)
	g, err := datasets.WorkflowRecipe("genome", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	net := graph.NewNetwork(5)
	inst := graph.NewInstance(g, net)
	datasets.SetHomogeneousCCR(inst, 1)
	sch, err := mustSched(b, "HEFT").Schedule(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ExecuteElastic(inst, sch, sim.ElasticOptions{LinkContention: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAAdversarial measures the genetic adversarial finder at a
// budget comparable to one annealing restart — the incremental loop
// (recycled instance banks, in-place crossover, delta-patched tables,
// memoized ranks) against the retained clone-and-full-Prepare reference
// (core.RunGAReference). The two produce byte-identical Results
// (internal/core/genetic_incremental_test.go), so the ns/op ratio is
// the pure cost of the machinery the rewrite removed.
func BenchmarkGAAdversarial(b *testing.B) {
	variants := []struct {
		name string
		run  func(target, baseline scheduler.Scheduler, opts core.GAOptions) (*core.Result, error)
	}{
		{"incremental", core.RunGA},
		{"reference", core.RunGAReference},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			heft, cpop := mustSched(b, "HEFT"), mustSched(b, "CPoP")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := core.DefaultGAOptions()
				opts.PopulationSize = 10
				opts.Generations = 20
				opts.Seed = uint64(i + 1)
				opts.InitialInstance = experiments.RandomChainInstance
				if _, err := v.run(heft, cpop, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerScaling tracks the parallel speedup of the runner
// worker pool itself across worker counts on a fixed 32-cell sweep of
// real scheduling work (HEFT on a montage workflow, re-instantiated per
// cell exactly as the experiment drivers do).
func BenchmarkRunnerScaling(b *testing.B) {
	r := rng.New(51)
	g, err := datasets.WorkflowRecipe("montage", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	net := graph.NewNetwork(6)
	rr := r.Split()
	for v := range net.Speeds {
		net.Speeds[v] = rr.ClippedGaussian(1, 1.0/3, 0.2, 2)
	}
	inst := graph.NewInstance(g, net)
	datasets.SetHomogeneousCCR(inst, 1)
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := runner.Map(32, runner.Options{Workers: workers}, func(k int) (float64, error) {
					s, err := scheduler.New("HEFT")
					if err != nil {
						return 0, err
					}
					sch, err := s.Schedule(inst)
					if err != nil {
						return 0, err
					}
					return sch.Makespan(), nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if out[0] <= 0 {
					b.Fatal("empty cell result")
				}
			}
		})
	}
}

// BenchmarkPairwiseParallelSpeedup compares sequential and parallel grid
// computation wall-clock (the b.N loop reports each variant's time).
func BenchmarkPairwiseParallelSpeedup(b *testing.B) {
	scheds := []scheduler.Scheduler{
		mustSched(b, "HEFT"), mustSched(b, "CPoP"),
		mustSched(b, "MinMin"), mustSched(b, "MaxMin"),
		mustSched(b, "FastestNode"), mustSched(b, "MCT"),
	}
	for _, workers := range []int{1, 0} {
		workers := workers
		name := "sequential"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiments.PairwiseOptions{Anneal: smallAnneal(80, 1)}
				opts.Anneal.Seed = uint64(i + 1)
				if _, err := experiments.PairwisePISAParallel(scheds, opts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWfcRoundTrip measures wfformat export + import of a workflow.
func BenchmarkWfcRoundTrip(b *testing.B) {
	r := rng.New(49)
	g, err := datasets.WorkflowRecipe("soykb", r.Split())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := wfc.FromTaskGraph("bench", g)
		data, err := doc.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		parsed, err := wfc.Parse(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := parsed.ToTaskGraph(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortfolioSelection measures exhaustive k-subset selection at
// the paper's scale (15 schedulers, k = 3).
func BenchmarkPortfolioSelection(b *testing.B) {
	n := 15
	names := make([]string, n)
	ratios := make([][]float64, n)
	r := rng.New(50)
	for i := range ratios {
		names[i] = schedulers.ExperimentalNames[i]
		ratios[i] = make([]float64, n)
		for j := range ratios[i] {
			if i == j {
				ratios[i][j] = -1
			} else {
				ratios[i][j] = 1 + 4*r.Float64()
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SelectPortfolio(names, ratios, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustnessReplay measures the jitter-replay loop.
func BenchmarkRobustnessReplay(b *testing.B) {
	inst := datasets.Fig1Instance()
	heft := mustSched(b, "HEFT")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(inst, heft, 0.2, 20, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
