package saga

import (
	"os"
	"testing"
	"time"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/schedule"
	"saga/internal/scheduler"
)

// The scale-tier gate and benchmark: schedule throughput (task·node
// pairs per second under HEFT) and table memory on the 1k/5k/10k
// scale_layered instances, plus the 10k bit-identity check of the
// edge-sparse Tables against the dense reference. BENCH_scale.json
// records the measured numbers; `make bench-scale` (part of `make
// verify`) enforces the floors below.

// scaleGateSeed fixes the gate's instances: same seed, same instance,
// every host.
const scaleGateSeed = 1

func scaleInstance(tb testing.TB, name string) *graph.Instance {
	tb.Helper()
	insts, err := datasets.Dataset(name, 1, scaleGateSeed)
	if err != nil {
		tb.Fatal(err)
	}
	return insts[0]
}

// heftThroughput schedules inst under HEFT once and returns the
// task·node pairs scheduled per second together with the schedule.
func heftThroughput(tb testing.TB, inst *graph.Instance) (float64, *schedule.Schedule) {
	tb.Helper()
	s := mustSchedT(tb, "HEFT")
	start := time.Now()
	sch, err := s.Schedule(inst)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		tb.Fatal(err)
	}
	pairs := float64(inst.Graph.NumTasks() * inst.Net.NumNodes())
	return pairs / elapsed, sch
}

// BenchmarkScaleHEFT is the measurement protocol behind
// BENCH_scale.json's throughput numbers: one full HEFT schedule of the
// pinned scale_layered instance per iteration, with the task·node
// throughput reported as a custom metric.
func BenchmarkScaleHEFT(b *testing.B) {
	for _, suffix := range []string{"1k", "5k", "10k"} {
		b.Run(suffix, func(b *testing.B) {
			inst := scaleInstance(b, "scale_layered_"+suffix)
			s := mustSched(b, "HEFT")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(inst); err != nil {
					b.Fatal(err)
				}
			}
			pairs := float64(inst.Graph.NumTasks() * inst.Net.NumNodes())
			b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "tasknodes/s")
		})
	}
}

// TestScaleBenchGate enforces the BENCH_scale.json regression floors:
// HEFT throughput at each scale tier, edge-sparse table memory with no
// node-squared link storage, and bit-identity of the sparse Tables
// against the dense reference at 10k tasks. Opt in via
// SCALE_BENCH_GATE=1 (`make bench-scale`); the floors are a quarter of
// the committed measurement so host noise cannot flake the gate while a
// real regression (a reintroduced dense path, an accidental quadratic)
// still trips it.
func TestScaleBenchGate(t *testing.T) {
	if os.Getenv("SCALE_BENCH_GATE") == "" {
		t.Skip("timing gate; run via `make bench-scale` (SCALE_BENCH_GATE=1)")
	}
	// Floors in task·node pairs per second; measurement / 4 (see
	// BENCH_scale.json for the protocol and the measured values).
	floors := map[string]float64{
		"1k":  1_600_000,
		"5k":  1_050_000,
		"10k": 780_000,
	}
	for _, suffix := range []string{"1k", "5k", "10k"} {
		t.Run("throughput_"+suffix, func(t *testing.T) {
			inst := scaleInstance(t, "scale_layered_"+suffix)
			heftThroughput(t, inst) // warm: tables, scratch pools, page-in
			best := 0.0
			for round := 0; round < 3; round++ {
				tp, sch := heftThroughput(t, inst)
				if tp > best {
					best = tp
				}
				if round == 0 {
					if err := schedule.Validate(inst, sch); err != nil {
						t.Fatal(err)
					}
				}
			}
			t.Logf("scale_layered_%s: %.0f task·nodes/s (floor %.0f)", suffix, best, floors[suffix])
			if best < floors[suffix] {
				t.Fatalf("HEFT throughput %.0f task·nodes/s below floor %.0f — scale-tier regression",
					best, floors[suffix])
			}
		})
	}

	t.Run("table_memory_10k", func(t *testing.T) {
		inst := scaleInstance(t, "scale_layered_10k")
		var tab graph.Tables
		tab.Build(inst)
		tab.EnsureAvgComm()
		nT, nD := inst.Graph.NumTasks(), inst.Net.NumNodes()
		nE := inst.Graph.NumDeps()
		if got := tab.LinkExceptions(); got > 4*nD {
			t.Fatalf("link exceptions %d > 4·|D|=%d — link storage is not edge-sparse", got, 4*nD)
		}
		// The layout is O(|V| + |E| + |D|·|V|): exec tables dominate with
		// 2·|V|·|D| floats (Exec + its prefix sums); everything else is a
		// handful of |V|- or |E|-length vectors. 3× headroom on that
		// closed form — a node-squared term at these sizes would blow
		// through it immediately.
		bound := 8 * (3*nT*nD + 16*nT + 8*nE + 64*nD + 4096)
		if got := tab.MemoryBytes(); got > bound {
			t.Fatalf("Tables memory %d bytes exceeds the O(|V|+|E|+|D|·|V|) bound %d", got, bound)
		}
		t.Logf("scale_layered_10k tables: %d bytes, %d link exceptions", tab.MemoryBytes(), tab.LinkExceptions())
	})

	t.Run("bit_identity_10k", func(t *testing.T) {
		// The sparse Tables must agree with the dense reference bit for
		// bit on every accessor HEFT's ranks read — AvgExec, Exec, the
		// link surface, the topo order, and the per-dependency average
		// communication times. UpwardRank and TopoOrderByPriority are
		// deterministic functions of exactly these inputs, so bit-equal
		// tables imply the bit-identical HEFT schedule the acceptance
		// criteria name.
		inst := scaleInstance(t, "scale_layered_10k")
		var sp graph.Tables
		var dn graph.DenseTables
		sp.Build(inst)
		dn.Build(inst)
		sp.EnsureAvgComm()
		dn.EnsureAvgComm()
		if len(sp.AvgExec) != len(dn.AvgExec) || len(sp.Exec) != len(dn.Exec) {
			t.Fatal("table shapes diverged")
		}
		for i := range sp.AvgExec {
			if sp.AvgExec[i] != dn.AvgExec[i] {
				t.Fatalf("AvgExec[%d]: %v vs %v", i, sp.AvgExec[i], dn.AvgExec[i])
			}
		}
		for i := range sp.Exec {
			if sp.Exec[i] != dn.Exec[i] {
				t.Fatalf("Exec[%d]: %v vs %v", i, sp.Exec[i], dn.Exec[i])
			}
		}
		for u := 0; u < inst.Net.NumNodes(); u++ {
			for v := 0; v < inst.Net.NumNodes(); v++ {
				if sp.Link(u, v) != dn.Link(u, v) || sp.CommFree(u, v) != dn.CommFree(u, v) {
					t.Fatalf("link surface diverged at (%d,%d)", u, v)
				}
			}
		}
		for i := range sp.Topo {
			if sp.Topo[i] != dn.Topo[i] {
				t.Fatalf("Topo[%d]: %d vs %d", i, sp.Topo[i], dn.Topo[i])
			}
		}
		for u := 0; u < inst.Graph.NumTasks(); u++ {
			for i := range inst.Graph.Succ[u] {
				if sp.AvgCommSucc(u, i) != dn.AvgCommSucc(u, i) {
					t.Fatalf("AvgCommSucc(%d,%d): %v vs %v", u, i, sp.AvgCommSucc(u, i), dn.AvgCommSucc(u, i))
				}
			}
			for i := range inst.Graph.Pred[u] {
				if sp.AvgCommPred(u, i) != dn.AvgCommPred(u, i) {
					t.Fatalf("AvgCommPred(%d,%d): %v vs %v", u, i, sp.AvgCommPred(u, i), dn.AvgCommPred(u, i))
				}
			}
		}
	})
}

// mustSchedT is mustSched for plain tests (the bench helper insists on
// *testing.B).
func mustSchedT(tb testing.TB, name string) scheduler.Scheduler {
	tb.Helper()
	s, err := scheduler.New(name)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
