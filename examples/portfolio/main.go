// Portfolio selection: the Section VII conclusion's proposal for
// Workflow Management System designers — run PISA over a set of
// candidate schedulers and pick the few whose combined worst-case
// makespan ratio is smallest, so that running all of them and keeping
// the best schedule covers every client workload.
package main

import (
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/experiments"
	"saga/internal/render"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
)

func main() {
	// Candidates: the six Section VII schedulers.
	var scheds []scheduler.Scheduler
	for _, name := range schedulers.AppSpecificNames {
		s, err := scheduler.New(name)
		if err != nil {
			log.Fatal(err)
		}
		scheds = append(scheds, s)
	}

	// Pairwise adversarial grid (parallel across scheduler pairs).
	opts := core.DefaultOptions()
	opts.MaxIters = 300
	opts.Restarts = 2
	fmt.Println("running pairwise PISA over", len(scheds), "schedulers...")
	grid, err := experiments.PairwisePISAParallel(scheds, experiments.PairwiseOptions{Anneal: opts}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render.Grid("worst-case ratio of column scheduler vs row baseline:",
		grid.Schedulers, grid.Schedulers, grid.Ratios))

	// Portfolios of every size: how much does each extra algorithm buy?
	fmt.Println("\nportfolio size vs combined worst-case ratio:")
	for k := 1; k <= len(scheds); k++ {
		p, err := experiments.SelectPortfolio(grid.Schedulers, grid.Ratios, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d  worst ratio %s  members: %v\n",
			k, render.Cell(p.WorstRatio), p.Members)
	}

	three, err := experiments.SelectPortfolio(grid.Schedulers, grid.Ratios, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe paper's suggested choice — three algorithms with the combined\n")
	fmt.Printf("minimum maximum makespan ratio: %v (worst case %s)\n",
		three.Members, render.Cell(three.WorstRatio))

	// An ensemble over the selected portfolio is itself a Scheduler.
	ens := schedulers.NewEnsemble("portfolio", three.Members...)
	fmt.Printf("\nensemble %q is ready to deploy as a single scheduler.\n", ens.Name())
}
