// Workflow scheduling: generate a synthetic scientific workflow (the
// montage astronomy pipeline) over a cloud-like network, benchmark the
// Section VII schedulers on it at several CCRs, and report makespan
// ratios — the decision a Workflow Management System designer faces.
package main

import (
	"fmt"
	"log"

	"saga/internal/datasets"
	"saga/internal/experiments"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedulers"
)

func main() {
	r := rng.New(2026)

	// One montage workflow instance per CCR level: same topology role,
	// link strength chosen so the average communication-to-computation
	// ratio hits the target.
	scheds := schedulers.AppSpecific()
	fmt.Println("montage workflow: makespan ratio against the best scheduler")
	fmt.Printf("%8s", "CCR")
	for _, s := range scheds {
		fmt.Printf("  %12s", s.Name())
	}
	fmt.Println()

	for _, ccr := range experiments.CCRLevels {
		g, err := datasets.WorkflowRecipe("montage", r.Split())
		if err != nil {
			log.Fatal(err)
		}
		net := graph.NewNetwork(6)
		rr := r.Split()
		for v := 0; v < net.NumNodes(); v++ {
			net.Speeds[v] = rr.ClippedGaussian(1, 1.0/3, 0.2, 2)
		}
		inst := graph.NewInstance(g, net)
		datasets.SetHomogeneousCCR(inst, ccr)
		if err := inst.Validate(); err != nil {
			log.Fatal(err)
		}

		ratios, err := experiments.MakespanRatioAgainstBest(inst, scheds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f", ccr)
		for _, s := range scheds {
			fmt.Printf("  %12.3f", ratios[s.Name()])
		}
		fmt.Println()
	}

	fmt.Println("\ninterpretation: ratios near 1.0 mean the scheduler matched the")
	fmt.Println("best algorithm on that instance; Section VII shows why this view")
	fmt.Println("alone is misleading — run the adversarial example next.")
}
