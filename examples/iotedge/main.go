// IoT/edge scheduling: place a RIoTBench ETL stream-processing pipeline
// onto an Edge/Fog/Cloud network and see how each algorithm trades
// computation speed against communication cost — the Table II IoT
// scenario.
package main

import (
	"fmt"
	"log"
	"sort"

	"saga/internal/datasets"
	"saga/internal/graph"
	"saga/internal/rng"
	"saga/internal/schedule"
	"saga/internal/scheduler"
	"saga/internal/schedulers"
)

func main() {
	r := rng.New(11)

	g, err := datasets.IoTRecipe("etl", r.Split())
	if err != nil {
		log.Fatal(err)
	}
	net := datasets.EdgeFogCloudNetwork(r.Split())
	inst := graph.NewInstance(g, net)
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ETL pipeline: %d tasks, %d dependencies\n", g.NumTasks(), g.NumDeps())
	fmt.Printf("network: %d nodes (edge speed 1 / fog speed 6 / cloud speed 50)\n", net.NumNodes())
	fmt.Printf("instance CCR: %.3f\n\n", inst.CCR())

	type row struct {
		name     string
		makespan float64
		cloud    int // tasks placed on cloud-tier nodes
	}
	var rows []row
	for _, s := range schedulers.Experimental() {
		sch, err := s.Schedule(inst)
		if err != nil {
			log.Fatal(err)
		}
		if err := schedule.Validate(inst, sch); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", s.Name(), err)
		}
		cloud := 0
		for _, a := range sch.ByTask {
			if net.Speeds[a.Node] == 50 {
				cloud++
			}
		}
		rows = append(rows, row{s.Name(), sch.Makespan(), cloud})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })

	fmt.Printf("%-12s  %10s  %s\n", "scheduler", "makespan", "tasks on cloud")
	for _, r := range rows {
		fmt.Printf("%-12s  %10.3f  %d/%d\n", r.name, r.makespan, r.cloud, g.NumTasks())
	}
	fmt.Println("\nschedulers unaware of node heterogeneity (ETF, FCP, FLB, OLB)")
	fmt.Println("leave the 50x-faster cloud nodes idle and pay for it — the")
	fmt.Println("pattern behind the IoT rows of the paper's Fig 2.")

	// Pick the winner the way a deployment pipeline would.
	best := rows[0]
	winner, err := scheduler.New(best.name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected scheduler: %s (makespan %.3f)\n", winner.Name(), best.makespan)
}
