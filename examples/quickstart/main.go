// Quickstart: build a problem instance by hand, schedule it with HEFT,
// validate the schedule, and draw it.
//
// This walks the Section II model end to end: a task graph with compute
// costs and data sizes, a heterogeneous network with speeds and link
// strengths, a scheduler, and the makespan of the result.
package main

import (
	"fmt"
	"log"

	"saga/internal/graph"
	"saga/internal/render"
	"saga/internal/schedule"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers" // register all Table I algorithms
)

func main() {
	// A diamond task graph: t1 fans out to t2 and t3, which join at t4
	// (the paper's Fig 1 example).
	g := graph.NewTaskGraph()
	t1 := g.AddTask("t1", 1.7)
	t2 := g.AddTask("t2", 1.2)
	t3 := g.AddTask("t3", 2.2)
	t4 := g.AddTask("t4", 0.8)
	g.MustAddDep(t1, t2, 0.6)
	g.MustAddDep(t1, t3, 0.5)
	g.MustAddDep(t2, t4, 1.3)
	g.MustAddDep(t3, t4, 1.6)

	// A three-node heterogeneous network.
	net := graph.NewNetwork(3)
	net.Speeds[0], net.Speeds[1], net.Speeds[2] = 1.0, 1.2, 1.5
	net.SetLink(0, 1, 0.5)
	net.SetLink(0, 2, 1.0)
	net.SetLink(1, 2, 1.2)

	inst := graph.NewInstance(g, net)
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	// Schedule with HEFT and check the result satisfies every Section II
	// validity constraint.
	heft, err := scheduler.New("HEFT")
	if err != nil {
		log.Fatal(err)
	}
	sch, err := heft.Schedule(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Validate(inst, sch); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("HEFT makespan: %.4f\n", sch.Makespan())
	fmt.Print(render.Gantt(inst, sch, 60))

	// Compare against every other registered algorithm.
	fmt.Println("\nall schedulers on this instance:")
	for _, name := range scheduler.Names() {
		s, err := scheduler.New(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Schedule(inst)
		if err != nil {
			fmt.Printf("  %-12s (skipped: %v)\n", name, err)
			continue
		}
		if err := schedule.Validate(inst, res); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", name, err)
		}
		fmt.Printf("  %-12s makespan %.4f\n", name, res.Makespan())
	}
}
