// Adversarial analysis: run PISA to find a problem instance where HEFT
// maximally under-performs CPoP, then dissect the instance the way the
// paper's Section VI-B case study does.
package main

import (
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/experiments"
	"saga/internal/render"
	"saga/internal/scheduler"
	_ "saga/internal/schedulers"
	"saga/internal/serialize"
)

func main() {
	heft, err := scheduler.New("HEFT")
	if err != nil {
		log.Fatal(err)
	}
	cpop, err := scheduler.New("CPoP")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's annealing parameters: Tmax=10, Tmin=0.1, alpha=0.99,
	// Imax=1000, 5 restarts from random chain instances.
	opts := core.DefaultOptions()
	opts.Seed = 7
	opts.OnImprove = func(iter int, ratio float64) {
		fmt.Printf("  improved at iteration %d: ratio %.3f\n", iter, ratio)
	}

	fmt.Println("searching for an instance where HEFT under-performs CPoP...")
	res, err := experiments.SinglePISA(heft, cpop, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest makespan ratio m(HEFT)/m(CPoP): %.3f (restarts: %v)\n\n",
		res.BestRatio, res.RestartRatios)

	inst := res.Best
	sh, err := heft.Schedule(inst)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := cpop.Schedule(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- HEFT (makespan %.4f) --\n%s", sh.Makespan(), render.Gantt(inst, sh, 64))
	fmt.Printf("-- CPoP (makespan %.4f) --\n%s", sc.Makespan(), render.Gantt(inst, sc, 64))

	data, err := serialize.MarshalInstance(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadversarial instance (JSON, reusable via `saga schedule -in ...`):\n%s\n", data)
}
